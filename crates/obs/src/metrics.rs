//! The unified metrics registry.
//!
//! Components register named metrics once and keep cheap handles:
//! [`Counter`] (monotonic `u64`), [`FloatCounter`] (monotonic `f64`,
//! used for simulated seconds), [`Gauge`] (settable `f64`) and
//! [`Histogram`] (log-bucketed distribution of observations with
//! quantile estimation and lossless merge). The registry snapshot
//! renders as a text table, JSON, or the Prometheus text exposition
//! format; the pre-existing stat structs (`TapeStats`, `CacheStats`,
//! `BufferStats`, …) are reconstructed from these handles, making the
//! registry the single source of truth for counter state.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json;

/// Monotonic integer counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Monotonic float counter (simulated seconds accumulate here).
/// Stored as `f64` bits in an atomic; add is a CAS loop.
#[derive(Debug, Clone, Default)]
pub struct FloatCounter(Arc<AtomicU64>);

impl FloatCounter {
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Last-write-wins float gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistSummary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistSummary {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

// -- log-bucketed histogram ------------------------------------------------
//
// Fixed bucket layout shared by every histogram, so `merge` is an
// element-wise add (lossless: merging two histograms is exactly the
// histogram of the concatenated samples). Buckets are log2-spaced with
// `SUB` sub-buckets per octave: bucket `k` covers
// `(2^((k-1+MIN)/SUB), 2^((k+MIN)/SUB)]` — ~19% relative width, so
// quantile estimates carry at most ~19% relative error. Values at or
// below zero land in a dedicated underflow bucket; values above the top
// boundary land in the overflow bucket.

/// Sub-buckets per power of two.
const SUB: i32 = 4;
/// Smallest bucketed exponent: 2^-30 ≈ 0.93 ns (simulated seconds).
const MIN_EXP: i32 = -30;
/// Largest bucketed exponent: 2^40 ≈ 1.1e12 (covers byte-sized values).
const MAX_EXP: i32 = 40;
/// Number of log buckets (between the underflow and overflow buckets).
const LOG_BUCKETS: usize = ((MAX_EXP - MIN_EXP) * SUB) as usize;
/// Total buckets: underflow + log buckets + overflow.
pub const NUM_BUCKETS: usize = LOG_BUCKETS + 2;

/// Inclusive upper bound of bucket `i` (`f64::INFINITY` for the last).
pub fn bucket_upper_bound(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else if i >= NUM_BUCKETS - 1 {
        f64::INFINITY
    } else {
        exp2_sub(i as i32 - 1 + MIN_EXP * SUB)
    }
}

/// Lower bound of bucket `i` (values in `i` are `> lower, <= upper`).
fn bucket_lower_bound(i: usize) -> f64 {
    if i <= 1 {
        0.0
    } else {
        exp2_sub(i as i32 - 2 + MIN_EXP * SUB)
    }
}

/// `2^(k/SUB)` for integer `k`.
fn exp2_sub(k: i32) -> f64 {
    (k as f64 / SUB as f64).exp2()
}

/// The bucket index a value falls into.
pub fn bucket_index(v: f64) -> usize {
    // NaN, zero and negatives all land in the underflow bucket.
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    // Bucket k covers (2^((k-1)/SUB + MIN_EXP), 2^(k/SUB + MIN_EXP)]:
    // take ceil(log2(v) * SUB) and shift into the table.
    let k = (v.log2() * SUB as f64).ceil() as i64 - (MIN_EXP * SUB) as i64 + 1;
    k.clamp(1, (NUM_BUCKETS - 1) as i64) as usize
}

/// A concrete observation a histogram bucket can point back to: the
/// trace/span that produced the latest value landing in that bucket.
/// Exposed in OpenMetrics exemplar syntax by
/// [`MetricsRegistry::render_prometheus`], so "what is in the p99.9
/// bucket?" has an answer a profiler can chase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// Root span of the trace (the bracketed query span).
    pub trace: u64,
    /// The specific span that observed the value.
    pub span: u64,
    pub value: f64,
}

/// Full snapshot of a [`Histogram`]: summary statistics plus per-bucket
/// counts. Supports quantile estimation and lossless merge.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// Per-bucket observation counts (see [`bucket_upper_bound`]).
    pub counts: Vec<u64>,
    /// Last exemplar per bucket; empty until the first
    /// [`HistSnapshot::observe_with_exemplar`] so plain histograms pay
    /// nothing.
    pub exemplars: Vec<Option<Exemplar>>,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            counts: vec![0; NUM_BUCKETS],
            exemplars: Vec::new(),
        }
    }
}

impl HistSnapshot {
    /// The scalar summary view (count/sum/min/max).
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
        }
    }

    pub fn mean(&self) -> f64 {
        self.summary().mean()
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        self.counts[bucket_index(value)] += 1;
    }

    /// Record one observation and remember `(trace, span)` as the
    /// bucket's exemplar (last write wins). A zero trace/span pair (no
    /// active trace) degrades to a plain [`HistSnapshot::observe`].
    pub fn observe_with_exemplar(&mut self, value: f64, trace: u64, span: u64) {
        self.observe(value);
        if trace == 0 && span == 0 {
            return;
        }
        if self.exemplars.is_empty() {
            self.exemplars = vec![None; NUM_BUCKETS];
        }
        self.exemplars[bucket_index(value)] = Some(Exemplar { trace, span, value });
    }

    /// The stored exemplar for bucket `i`, if any.
    pub fn exemplar(&self, i: usize) -> Option<Exemplar> {
        self.exemplars.get(i).copied().flatten()
    }

    /// Pre-size the exemplar table so the first
    /// [`HistSnapshot::observe_with_exemplar`] on the hot path performs
    /// no allocation.
    pub fn reserve_exemplars(&mut self) {
        if self.exemplars.is_empty() {
            self.exemplars = vec![None; NUM_BUCKETS];
        }
    }

    /// Merge another snapshot into this one. Because every histogram
    /// shares one fixed bucket layout, this is lossless: the result's
    /// buckets equal the buckets of the concatenated sample streams.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        if !other.exemplars.is_empty() {
            if self.exemplars.is_empty() {
                self.exemplars = vec![None; NUM_BUCKETS];
            }
            for (a, b) in self.exemplars.iter_mut().zip(&other.exemplars) {
                if b.is_some() {
                    *a = *b; // the merged-in stream is the newer one
                }
            }
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`). Walks the cumulative
    /// bucket counts to the bucket holding rank `q·count`, interpolates
    /// linearly inside it, and clamps to the observed `[min, max]`, so
    /// every estimate lies in the observed range and estimates are
    /// monotone in `q`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= rank {
                // Interpolate within this bucket by the fraction of its
                // occupants below the target rank.
                let frac = if c == 0 {
                    0.0
                } else {
                    ((rank - cum as f64) / c as f64).clamp(0.0, 1.0)
                };
                let lo = bucket_lower_bound(i).max(self.min);
                let hi = if bucket_upper_bound(i).is_finite() {
                    bucket_upper_bound(i).min(self.max)
                } else {
                    self.max
                };
                let hi = hi.max(lo);
                return (lo + (hi - lo) * frac).clamp(self.min, self.max);
            }
            cum = next;
        }
        self.max
    }

    /// Cumulative `(upper_bound, count ≤ bound)` pairs for every bucket
    /// that closes out at least one observation, in increasing bound
    /// order. The final `(+Inf, total)` entry is always present.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let ub = bucket_upper_bound(i);
            if ub.is_finite() {
                out.push((ub, cum));
            }
        }
        out.push((f64::INFINITY, self.count));
        out
    }
}

/// Histogram of `f64` observations: log-spaced buckets plus
/// count/sum/min/max, shareable across threads.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<HistSnapshot>>);

impl Histogram {
    pub fn observe(&self, value: f64) {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe(value);
    }

    /// Observe a value and retain `(trace, span)` as the exemplar of the
    /// bucket the value lands in (see [`HistSnapshot::observe_with_exemplar`]).
    pub fn observe_with_exemplar(&self, value: f64, trace: u64, span: u64) {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe_with_exemplar(value, trace, span);
    }

    /// Pre-size the exemplar table (allocation-free observations after).
    pub fn reserve_exemplars(&self) {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .reserve_exemplars();
    }

    /// Scalar summary (count/sum/min/max).
    pub fn summary(&self) -> HistSummary {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).summary()
    }

    /// Full bucketed snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Estimate a quantile of everything observed so far.
    pub fn quantile(&self, q: f64) -> f64 {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).quantile(q)
    }

    /// Merge another histogram's observations into this one (lossless).
    pub fn merge_from(&self, other: &Histogram) {
        let theirs = other.snapshot();
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(&theirs);
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    FloatCounter(FloatCounter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Snapshot value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    FloatCounter(f64),
    Gauge(f64),
    Histogram(HistSnapshot),
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::Counter(v) => write!(f, "{v}"),
            MetricValue::FloatCounter(v) | MetricValue::Gauge(v) => write!(f, "{v:.6}"),
            MetricValue::Histogram(h) => write!(
                f,
                "count={} mean={:.6} min={:.6} p50={:.6} p99={:.6} max={:.6}",
                h.count,
                h.mean(),
                h.min,
                h.quantile(0.50),
                h.quantile(0.99),
                h.max
            ),
        }
    }
}

/// Turn a dotted metric name into a Prometheus-legal one
/// (`tape.transfer_s` → `tape_transfer_s`).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Format an `f64` for the Prometheus text format (`+Inf` for infinity).
fn prom_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

/// Escape a label value for the Prometheus/OpenMetrics text format:
/// backslash, double-quote and newline must be backslash-escaped inside
/// the quoted value.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Append an OpenMetrics exemplar suffix (` # {trace_id="…",span_id="…"} v`)
/// to a `_bucket` sample line, if the bucket has one.
fn write_exemplar(out: &mut String, ex: Option<Exemplar>) {
    if let Some(ex) = ex {
        out.push_str(&format!(
            " # {{trace_id=\"{}\",span_id=\"{}\"}} {}",
            ex.trace,
            ex.span,
            prom_f64(ex.value)
        ));
    }
}

/// Registry of named metrics; clones share state.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<&'static str, Metric>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn entry(&self, name: &'static str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name).or_insert_with(make).clone()
    }

    /// Get or create the named monotonic counter.
    pub fn counter(&self, name: &'static str) -> Counter {
        match self.entry(name, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the named monotonic float counter.
    pub fn fcounter(&self, name: &'static str) -> FloatCounter {
        match self.entry(name, || Metric::FloatCounter(FloatCounter::default())) {
            Metric::FloatCounter(c) => c,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the named gauge.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match self.entry(name, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the named histogram.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        match self.entry(name, || Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Ordered snapshot of all metrics.
    pub fn snapshot(&self) -> Vec<(&'static str, MetricValue)> {
        let map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|(&name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::FloatCounter(c) => MetricValue::FloatCounter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name, v)
            })
            .collect()
    }

    /// Render the snapshot as an aligned two-column text table.
    pub fn render_text(&self) -> String {
        let snap = self.snapshot();
        let width = snap.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &snap {
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
        out
    }

    /// Render the snapshot as one JSON object. Histograms appear as
    /// `{"count", "sum", "min", "max", "p50", "p90", "p99", "p999"}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push(':');
            match value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::FloatCounter(v) | MetricValue::Gauge(v) => {
                    json::write_f64(&mut out, *v)
                }
                MetricValue::Histogram(h) => {
                    out.push_str("{\"count\":");
                    out.push_str(&h.count.to_string());
                    for (k, v) in [
                        ("sum", h.sum),
                        ("min", h.min),
                        ("max", h.max),
                        ("p50", h.quantile(0.50)),
                        ("p90", h.quantile(0.90)),
                        ("p99", h.quantile(0.99)),
                        ("p999", h.quantile(0.999)),
                    ] {
                        out.push(',');
                        json::write_str(&mut out, k);
                        out.push(':');
                        json::write_f64(&mut out, v);
                    }
                    out.push('}');
                }
            }
        }
        out.push('}');
        out
    }

    /// Render the snapshot in the Prometheus text exposition format:
    /// `# TYPE` lines plus one sample per counter/gauge, and
    /// `_bucket{le="…"}` (cumulative), `_sum` and `_count` series per
    /// histogram. Only buckets that close out at least one observation
    /// are emitted (plus the mandatory `+Inf` bucket); cumulative counts
    /// are non-decreasing and the `+Inf` bucket equals `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            let pname = prom_name(name);
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {pname} counter\n{pname} {v}\n"));
                }
                MetricValue::FloatCounter(v) => {
                    out.push_str(&format!(
                        "# TYPE {pname} counter\n{pname} {}\n",
                        prom_f64(v)
                    ));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {pname} gauge\n{pname} {}\n", prom_f64(v)));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {pname} histogram\n"));
                    let mut cum = 0u64;
                    for (i, &c) in h.counts.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cum += c;
                        let ub = bucket_upper_bound(i);
                        if !ub.is_finite() {
                            continue; // overflow rides the +Inf line below
                        }
                        out.push_str(&format!("{pname}_bucket{{le=\"{}\"}} {cum}", prom_f64(ub)));
                        write_exemplar(&mut out, h.exemplar(i));
                        out.push('\n');
                    }
                    out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {}", h.count));
                    write_exemplar(&mut out, h.exemplar(NUM_BUCKETS - 1));
                    out.push('\n');
                    out.push_str(&format!("{pname}_sum {}\n", prom_f64(h.sum)));
                    out.push_str(&format!("{pname}_count {}\n", h.count));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("tape.mounts");
        let b = reg.counter("tape.mounts");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("tape.mounts").get(), 3);
    }

    #[test]
    fn float_counter_accumulates() {
        let reg = MetricsRegistry::new();
        let t = reg.fcounter("tape.transfer_s");
        t.add(1.5);
        t.add(0.25);
        assert!((t.get() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_summary() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("query.latency_s");
        h.observe(2.0);
        h.observe(4.0);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn bucket_index_respects_boundaries() {
        // Exact powers of two sit at a bucket's inclusive upper bound.
        let i = bucket_index(1.0);
        assert_eq!(bucket_upper_bound(i), 1.0);
        let j = bucket_index(1.0001);
        assert_eq!(j, i + 1, "just above a boundary goes to the next bucket");
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e300), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(1e-300), 1);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let h = Histogram::default();
        for i in 1..=1000 {
            h.observe(i as f64 / 100.0); // 0.01 .. 10.0
        }
        let snap = h.snapshot();
        let p50 = snap.quantile(0.50);
        let p90 = snap.quantile(0.90);
        let p99 = snap.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p50 >= snap.min && p99 <= snap.max);
        // Log buckets are ~19% wide: p50 of uniform(0.01,10) is ~5.
        assert!((p50 - 5.0).abs() < 1.5, "p50 estimate {p50} too far from 5");
        assert_eq!(snap.quantile(0.0), snap.min);
        assert_eq!(snap.quantile(1.0), snap.max);
    }

    #[test]
    fn merge_is_lossless() {
        let a = Histogram::default();
        let b = Histogram::default();
        let all = Histogram::default();
        for i in 0..100 {
            let v = 0.001 * (i as f64 + 1.0) * if i % 2 == 0 { 1.0 } else { 37.5 };
            if i < 60 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            all.observe(v);
        }
        a.merge_from(&b);
        let merged = a.snapshot();
        let direct = all.snapshot();
        assert_eq!(merged.counts, direct.counts);
        assert_eq!(merged.count, direct.count);
        assert_eq!(merged.min, direct.min);
        assert_eq!(merged.max, direct.max);
        assert!((merged.sum - direct.sum).abs() < 1e-9);
    }

    #[test]
    fn renders_text_and_json() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").add(7);
        reg.fcounter("a.seconds").add(0.5);
        reg.gauge("c.fill").set(0.75);
        reg.histogram("d.lat").observe(1.0);
        let text = reg.render_text();
        // BTreeMap ordering: alphabetical
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("a.seconds"));
        assert!(lines[1].starts_with("b.count"));
        let jsonv = reg.render_json();
        assert!(jsonv.contains("\"b.count\":7"));
        assert!(jsonv.contains("\"c.fill\":0.75"));
        assert!(jsonv.contains("\"d.lat\":{\"count\":1"));
        assert!(jsonv.contains("\"p99\":"));
    }

    #[test]
    fn renders_prometheus_exposition() {
        let reg = MetricsRegistry::new();
        reg.counter("tape.mounts").add(3);
        reg.fcounter("tape.transfer_s").add(12.5);
        reg.gauge("cache.fill").set(0.5);
        let h = reg.histogram("heaven.query_latency_s");
        h.observe(0.5);
        h.observe(2.0);
        h.observe(300.0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE tape_mounts counter\ntape_mounts 3\n"));
        assert!(text.contains("# TYPE cache_fill gauge\ncache_fill 0.5\n"));
        assert!(text.contains("# TYPE heaven_query_latency_s histogram\n"));
        assert!(text.contains("heaven_query_latency_s_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("heaven_query_latency_s_sum 302.5\n"));
        assert!(text.contains("heaven_query_latency_s_count 3\n"));
        // cumulative bucket counts are non-decreasing and end at _count
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("heaven_query_latency_s_bucket") {
                let v: u64 = rest.split_whitespace().last().unwrap().parse().unwrap();
                assert!(v >= last, "bucket counts must be cumulative");
                last = v;
            }
        }
        assert_eq!(last, 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflicts_panic() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }
}
