//! The unified metrics registry.
//!
//! Components register named metrics once and keep cheap handles:
//! [`Counter`] (monotonic `u64`), [`FloatCounter`] (monotonic `f64`,
//! used for simulated seconds), [`Gauge`] (settable `f64`) and
//! [`Histogram`] (count/sum/min/max of observations). The registry
//! snapshot renders as a text table or JSON; the pre-existing stat
//! structs (`TapeStats`, `CacheStats`, `BufferStats`, …) are
//! reconstructed from these handles, making the registry the single
//! source of truth for counter state.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json;

/// Monotonic integer counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Monotonic float counter (simulated seconds accumulate here).
/// Stored as `f64` bits in an atomic; add is a CAS loop.
#[derive(Debug, Clone, Default)]
pub struct FloatCounter(Arc<AtomicU64>);

impl FloatCounter {
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Last-write-wins float gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistSummary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistSummary {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Histogram of `f64` observations (summary statistics, no buckets).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<HistSummary>>);

impl Histogram {
    pub fn observe(&self, value: f64) {
        let mut h = self.0.lock().unwrap_or_else(|e| e.into_inner());
        if h.count == 0 {
            h.min = value;
            h.max = value;
        } else {
            h.min = h.min.min(value);
            h.max = h.max.max(value);
        }
        h.count += 1;
        h.sum += value;
    }

    pub fn summary(&self) -> HistSummary {
        *self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    FloatCounter(FloatCounter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Snapshot value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    FloatCounter(f64),
    Gauge(f64),
    Histogram(HistSummary),
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::Counter(v) => write!(f, "{v}"),
            MetricValue::FloatCounter(v) | MetricValue::Gauge(v) => write!(f, "{v:.6}"),
            MetricValue::Histogram(h) => write!(
                f,
                "count={} mean={:.6} min={:.6} max={:.6}",
                h.count,
                h.mean(),
                h.min,
                h.max
            ),
        }
    }
}

/// Registry of named metrics; clones share state.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<&'static str, Metric>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn entry(&self, name: &'static str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name).or_insert_with(make).clone()
    }

    /// Get or create the named monotonic counter.
    pub fn counter(&self, name: &'static str) -> Counter {
        match self.entry(name, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the named monotonic float counter.
    pub fn fcounter(&self, name: &'static str) -> FloatCounter {
        match self.entry(name, || Metric::FloatCounter(FloatCounter::default())) {
            Metric::FloatCounter(c) => c,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the named gauge.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match self.entry(name, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the named histogram.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        match self.entry(name, || Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Ordered snapshot of all metrics.
    pub fn snapshot(&self) -> Vec<(&'static str, MetricValue)> {
        let map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|(&name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::FloatCounter(c) => MetricValue::FloatCounter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                (name, v)
            })
            .collect()
    }

    /// Render the snapshot as an aligned two-column text table.
    pub fn render_text(&self) -> String {
        let snap = self.snapshot();
        let width = snap.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &snap {
            let rendered = match value {
                MetricValue::Counter(v) => format!("{v}"),
                MetricValue::FloatCounter(v) | MetricValue::Gauge(v) => format!("{v:.6}"),
                MetricValue::Histogram(h) => format!(
                    "count={} mean={:.6} min={:.6} max={:.6}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                ),
            };
            out.push_str(&format!("{name:<width$}  {rendered}\n"));
        }
        out
    }

    /// Render the snapshot as one JSON object.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push(':');
            match value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::FloatCounter(v) | MetricValue::Gauge(v) => {
                    json::write_f64(&mut out, *v)
                }
                MetricValue::Histogram(h) => {
                    out.push_str("{\"count\":");
                    out.push_str(&h.count.to_string());
                    out.push_str(",\"sum\":");
                    json::write_f64(&mut out, h.sum);
                    out.push_str(",\"min\":");
                    json::write_f64(&mut out, h.min);
                    out.push_str(",\"max\":");
                    json::write_f64(&mut out, h.max);
                    out.push('}');
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("tape.mounts");
        let b = reg.counter("tape.mounts");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("tape.mounts").get(), 3);
    }

    #[test]
    fn float_counter_accumulates() {
        let reg = MetricsRegistry::new();
        let t = reg.fcounter("tape.transfer_s");
        t.add(1.5);
        t.add(0.25);
        assert!((t.get() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_summary() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("query.latency_s");
        h.observe(2.0);
        h.observe(4.0);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn renders_text_and_json() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").add(7);
        reg.fcounter("a.seconds").add(0.5);
        reg.gauge("c.fill").set(0.75);
        reg.histogram("d.lat").observe(1.0);
        let text = reg.render_text();
        // BTreeMap ordering: alphabetical
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("a.seconds"));
        assert!(lines[1].starts_with("b.count"));
        let jsonv = reg.render_json();
        assert!(jsonv.contains("\"b.count\":7"));
        assert!(jsonv.contains("\"c.fill\":0.75"));
        assert!(jsonv.contains("\"d.lat\":{\"count\":1"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflicts_panic() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }
}
