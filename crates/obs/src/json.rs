//! Minimal JSON serialization helpers.
//!
//! The workspace has no serde; trace records, metric snapshots and bench
//! tables all emit JSON through these few functions. Only what the
//! emitters need is implemented: string escaping and a small value
//! writer. Numbers are written with enough precision to round-trip.

use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    // Fast path: nothing to escape (the overwhelmingly common case for
    // trace names and keys) appends in one copy.
    if s.bytes().all(|b| b != b'"' && b != b'\\' && b >= 0x20) {
        out.push_str(s);
    } else {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
    }
    out.push('"');
}

/// `s` as a standalone JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_str(&mut out, s);
    out
}

/// Append an `f64` as a JSON number. Non-finite values (which JSON cannot
/// represent) degrade to `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // {:?} gives shortest round-trip formatting for f64.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Append a `u64` as a JSON number without going through `fmt` machinery
/// (identical output to `{}`; the trace serializer calls this per record).
pub fn write_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // SAFETY-free: the buffer holds only ASCII digits.
    out.push_str(std::str::from_utf8(&buf[i..]).unwrap());
}

/// Append an `i64` as a JSON number (identical output to `{}`).
pub fn write_i64(out: &mut String, v: i64) {
    if v < 0 {
        out.push('-');
        write_u64(out, v.unsigned_abs());
    } else {
        write_u64(out, v as u64);
    }
}

/// Append a `key: value` pair where value is already-serialized JSON.
pub fn write_kv_raw(out: &mut String, key: &str, raw: &str) {
    write_str(out, key);
    out.push(':');
    out.push_str(raw);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        assert_eq!(escape("plain"), r#""plain""#);
    }

    #[test]
    fn integers_match_display_formatting() {
        for v in [0u64, 7, 10, 409_515, u64::MAX] {
            let mut s = String::new();
            write_u64(&mut s, v);
            assert_eq!(s, v.to_string());
        }
        for v in [0i64, -1, 42, i64::MIN, i64::MAX] {
            let mut s = String::new();
            write_i64(&mut s, v);
            assert_eq!(s, v.to_string());
        }
    }

    #[test]
    fn f64_round_trip_and_nonfinite() {
        let mut s = String::new();
        write_f64(&mut s, 0.1);
        assert_eq!(s, "0.1");
        s.clear();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }
}
