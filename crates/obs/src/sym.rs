//! Global symbol interning for trace names and string field values.
//!
//! The trace fast path must not allocate, so span/event names and hot
//! string labels are interned once into `u32` symbol ids ([`Sym`]) and
//! records carry only the id. Two lookup paths exist:
//!
//! * [`Sym::intern_static`] — for `&'static str` names. A small
//!   pointer-identity cache makes the warm case a couple of atomic loads
//!   with no hashing of the string contents.
//! * [`Sym::intern`] — for dynamic strings (drive labels, media names).
//!   Content-hashed via FNV-1a into an open-addressed atomic table; the
//!   warm case hashes the bytes but allocates nothing. The first sight
//!   of a string copies it into leaked storage (bounded by
//!   [`MAX_SYMS`]; beyond that everything maps to the `"!overflow"`
//!   sentinel so the table cannot grow without bound).
//!
//! Each symbol also remembers which [`Subsystem`] its name belongs to
//! (classified once, at intern time, from the name prefix), so the
//! per-subsystem trace-level check on the hot path is one array load.

use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Hard cap on distinct interned strings. Past this every new string
/// interns to [`SYM_OVERFLOW`].
pub const MAX_SYMS: usize = 1 << 16;

/// Content-table capacity (50% max load factor, power of two).
const SLOT_CAP: usize = MAX_SYMS * 2;

/// Pointer-cache capacity for `&'static str` fast-path hits.
const PTR_CAP: usize = 1 << 12;
/// Linear-probe bound in the pointer cache before falling back to the
/// content table.
const PTR_PROBES: usize = 16;

/// An interned string id. `Sym(0)` is the `"!overflow"` sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(pub u32);

/// The sentinel every string interns to once the table is full.
pub const SYM_OVERFLOW: Sym = Sym(0);

/// Which part of the system a trace name belongs to, derived from its
/// prefix (`"tape."`, `"hsm."`, …). Used for per-subsystem trace levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Subsystem {
    /// `query`, `heaven.*`, `trace.*` — the core system and the bus itself.
    Core = 0,
    /// `tape.*` — the simulated tape library.
    Tape = 1,
    /// `hsm.*` — hierarchical storage management.
    Hsm = 2,
    /// `cache.*` — super-tile and tile caches.
    Cache = 3,
    /// `export.*` — archive export pipelines.
    Export = 4,
    /// `rdbms.*` — the base storage manager.
    Rdbms = 5,
    /// `arraydb.*` — the array DBMS layer.
    ArrayDb = 6,
    /// Anything else (tests, user instrumentation).
    Other = 7,
}

impl Subsystem {
    /// Number of subsystems (size of per-subsystem level arrays).
    pub const COUNT: usize = 8;

    /// All subsystems, in id order.
    pub const ALL: [Subsystem; Subsystem::COUNT] = [
        Subsystem::Core,
        Subsystem::Tape,
        Subsystem::Hsm,
        Subsystem::Cache,
        Subsystem::Export,
        Subsystem::Rdbms,
        Subsystem::ArrayDb,
        Subsystem::Other,
    ];

    /// Classify a span/event name by prefix.
    pub fn of_name(name: &str) -> Subsystem {
        let prefix = name.split('.').next().unwrap_or(name);
        match prefix {
            "query" | "heaven" | "trace" | "sched" => Subsystem::Core,
            "tape" => Subsystem::Tape,
            "hsm" => Subsystem::Hsm,
            "cache" => Subsystem::Cache,
            "export" => Subsystem::Export,
            "rdbms" => Subsystem::Rdbms,
            "arraydb" => Subsystem::ArrayDb,
            _ => Subsystem::Other,
        }
    }

    fn from_u8(v: u8) -> Subsystem {
        Subsystem::ALL[(v as usize).min(Subsystem::COUNT - 1)]
    }

    /// Lower-case name, as used by config knobs (`--trace-level tape=off`).
    pub fn as_str(self) -> &'static str {
        match self {
            Subsystem::Core => "core",
            Subsystem::Tape => "tape",
            Subsystem::Hsm => "hsm",
            Subsystem::Cache => "cache",
            Subsystem::Export => "export",
            Subsystem::Rdbms => "rdbms",
            Subsystem::ArrayDb => "arraydb",
            Subsystem::Other => "other",
        }
    }

    /// Parse a subsystem name (inverse of [`Subsystem::as_str`]).
    pub fn parse(s: &str) -> Option<Subsystem> {
        Subsystem::ALL.into_iter().find(|sub| sub.as_str() == s)
    }
}

struct Interner {
    /// Open-addressed content table; entry = `(hash_tag << 32) | (id + 1)`,
    /// `0` = empty. Published with `Release` after the string storage.
    slots: Box<[AtomicU64]>,
    /// Pointer-identity cache for `&'static str`: key = `ptr ^ (len << 48)`.
    ptr_keys: Box<[AtomicU64]>,
    /// Value for the key at the same index, stored as `id + 1` (`0` = not
    /// yet published; readers fall back to the content table).
    ptr_vals: Box<[AtomicU32]>,
    /// id → string storage (leaked copies or `'static` originals).
    strs: Box<[AtomicPtr<u8>]>,
    lens: Box<[AtomicU32]>,
    subs: Box<[AtomicU8]>,
    next: AtomicU32,
    /// Writers serialize inserts; readers never take this.
    write: Mutex<()>,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| {
        let it = Interner {
            slots: (0..SLOT_CAP).map(|_| AtomicU64::new(0)).collect(),
            ptr_keys: (0..PTR_CAP).map(|_| AtomicU64::new(0)).collect(),
            ptr_vals: (0..PTR_CAP).map(|_| AtomicU32::new(0)).collect(),
            strs: (0..MAX_SYMS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            lens: (0..MAX_SYMS).map(|_| AtomicU32::new(0)).collect(),
            subs: (0..MAX_SYMS)
                .map(|_| AtomicU8::new(Subsystem::Other as u8))
                .collect(),
            next: AtomicU32::new(0),
            write: Mutex::new(()),
        };
        // Reserve id 0 for the overflow sentinel.
        it.insert_locked("!overflow", fnv1a(b"!overflow"), None);
        it
    })
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Nonzero 32-bit tag stored next to the id in a content slot.
fn hash_tag(h: u64) -> u32 {
    ((h >> 32) as u32) | 1
}

impl Interner {
    fn str_of(&self, id: u32) -> &'static str {
        let ptr = self.strs[id as usize].load(Ordering::Acquire);
        let len = self.lens[id as usize].load(Ordering::Acquire) as usize;
        if ptr.is_null() {
            return "!overflow";
        }
        // SAFETY: (ptr, len) were stored from a leaked `Box<str>` or a
        // `&'static str` and are never freed or mutated; the Release store
        // of the slot entry (or ptr_vals entry) that delivered `id`
        // happens-after both stores.
        unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, len)) }
    }

    fn sub_of(&self, id: u32) -> Subsystem {
        Subsystem::from_u8(self.subs[id as usize].load(Ordering::Relaxed))
    }

    /// Look up `s` in the content table; insert on miss.
    fn intern_content(&self, s: &str, static_src: Option<&'static str>) -> Sym {
        let h = fnv1a(s.as_bytes());
        let tag = hash_tag(h);
        let mask = SLOT_CAP - 1;
        let mut i = (h as usize) & mask;
        loop {
            let e = self.slots[i].load(Ordering::Acquire);
            if e == 0 {
                return self.insert_locked(s, h, static_src);
            }
            if (e >> 32) as u32 == tag {
                let id = (e as u32) - 1;
                if self.str_of(id) == s {
                    return Sym(id);
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert `s` (serialized under the write lock; re-probes first in
    /// case another thread inserted it meanwhile).
    fn insert_locked(&self, s: &str, h: u64, static_src: Option<&'static str>) -> Sym {
        let _guard = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let tag = hash_tag(h);
        let mask = SLOT_CAP - 1;
        let mut i = (h as usize) & mask;
        loop {
            let e = self.slots[i].load(Ordering::Acquire);
            if e == 0 {
                break;
            }
            if (e >> 32) as u32 == tag {
                let id = (e as u32) - 1;
                if self.str_of(id) == s {
                    return Sym(id);
                }
            }
            i = (i + 1) & mask;
        }
        let id = self.next.load(Ordering::Relaxed);
        if id as usize >= MAX_SYMS {
            return SYM_OVERFLOW;
        }
        let stored: &'static str = match static_src {
            Some(st) => st,
            None => Box::leak(s.to_string().into_boxed_str()),
        };
        self.strs[id as usize].store(stored.as_ptr() as *mut u8, Ordering::Release);
        self.lens[id as usize].store(stored.len() as u32, Ordering::Release);
        self.subs[id as usize].store(Subsystem::of_name(s) as u8, Ordering::Relaxed);
        self.next.store(id + 1, Ordering::Relaxed);
        self.slots[i].store(((tag as u64) << 32) | (id as u64 + 1), Ordering::Release);
        Sym(id)
    }

    fn ptr_key(s: &'static str) -> u64 {
        (s.as_ptr() as u64) ^ ((s.len() as u64) << 48)
    }

    fn intern_static(&self, s: &'static str) -> Sym {
        let key = Interner::ptr_key(s);
        // Fibonacci-hash the pointer into the cache.
        let mut i = (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 52) as usize & (PTR_CAP - 1);
        for _ in 0..PTR_PROBES {
            let k = self.ptr_keys[i].load(Ordering::Acquire);
            if k == key {
                let v = self.ptr_vals[i].load(Ordering::Acquire);
                if v != 0 {
                    return Sym(v - 1);
                }
                break; // key visible before value: treat as miss
            }
            if k == 0 {
                break;
            }
            i = (i + 1) & (PTR_CAP - 1);
        }
        let sym = self.intern_content(s, Some(s));
        self.cache_ptr(key, sym);
        sym
    }

    fn cache_ptr(&self, key: u64, sym: Sym) {
        let _guard = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let mut i = (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 52) as usize & (PTR_CAP - 1);
        for _ in 0..PTR_PROBES {
            let k = self.ptr_keys[i].load(Ordering::Acquire);
            if k == key {
                return; // already cached
            }
            if k == 0 {
                // Publish the value before the key so readers never see a
                // key without its id.
                self.ptr_vals[i].store(sym.0 + 1, Ordering::Release);
                self.ptr_keys[i].store(key, Ordering::Release);
                return;
            }
            i = (i + 1) & (PTR_CAP - 1);
        }
        // Cache full around this hash: skip; content table still serves.
    }
}

impl Sym {
    /// Intern a dynamic string by content. Warm hits allocate nothing.
    pub fn intern(s: &str) -> Sym {
        interner().intern_content(s, None)
    }

    /// Intern a `'static` string; warm hits avoid hashing the contents.
    pub fn intern_static(s: &'static str) -> Sym {
        interner().intern_static(s)
    }

    /// The interned string.
    pub fn resolve(self) -> &'static str {
        interner().str_of(self.0)
    }

    /// Subsystem classification of the interned name.
    pub fn subsystem(self) -> Subsystem {
        interner().sub_of(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_content_addressed() {
        let a = Sym::intern("tape.mount");
        let b = Sym::intern(&String::from("tape.mount"));
        let c = Sym::intern_static("tape.mount");
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.resolve(), "tape.mount");
        assert_eq!(a.subsystem(), Subsystem::Tape);
        assert_ne!(a, Sym::intern("tape.unmount"));
    }

    #[test]
    fn static_fast_path_round_trips() {
        static NAME: &str = "heaven.fetch_region";
        let a = Sym::intern_static(NAME);
        let b = Sym::intern_static(NAME);
        assert_eq!(a, b);
        assert_eq!(a.resolve(), NAME);
        assert_eq!(a.subsystem(), Subsystem::Core);
    }

    #[test]
    fn subsystem_classification_covers_all_prefixes() {
        for (name, want) in [
            ("query", Subsystem::Core),
            ("heaven.st_fetch", Subsystem::Core),
            ("trace.config", Subsystem::Core),
            ("sched.batch", Subsystem::Core),
            ("tape.transfer", Subsystem::Tape),
            ("hsm.stage", Subsystem::Hsm),
            ("cache.st.hit", Subsystem::Cache),
            ("export.tct", Subsystem::Export),
            ("rdbms.checkpoint", Subsystem::Rdbms),
            ("arraydb.tile_read", Subsystem::ArrayDb),
            ("custom.thing", Subsystem::Other),
        ] {
            assert_eq!(Subsystem::of_name(name), want, "{name}");
        }
        for sub in Subsystem::ALL {
            assert_eq!(Subsystem::parse(sub.as_str()), Some(sub));
        }
    }

    #[test]
    fn overflow_sentinel_resolves() {
        assert_eq!(SYM_OVERFLOW.resolve(), "!overflow");
    }
}
