//! The simulated-time trace bus.
//!
//! Spans and events are recorded with a **simulated** timestamp as the
//! primary time axis (the `SimClock` seconds the storage simulation
//! advances) and the wall-clock Unix time as a secondary field. Because
//! the simulation is deterministic, two runs of the same workload
//! produce byte-identical span trees modulo the wall-clock field.
//!
//! The bus keeps an explicit span stack, so instrumentation sites never
//! thread parent ids around: `span_start` pushes, `span_end` pops, and
//! events attach to the innermost open span. This makes well-nestedness
//! a structural property of every trace the bus emits.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json;

/// Identifier of a span, unique within one `TraceBus`.
pub type SpanId = u64;

/// A typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl Field {
    fn write_json(&self, out: &mut String) {
        match self {
            Field::U64(v) => {
                out.push_str(&v.to_string());
            }
            Field::I64(v) => {
                out.push_str(&v.to_string());
            }
            Field::F64(v) => json::write_f64(out, *v),
            Field::Str(s) => json::write_str(out, s),
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::U64(v) => write!(f, "{v}"),
            Field::I64(v) => write!(f, "{v}"),
            Field::F64(v) => write!(f, "{v:.6}"),
            Field::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Field {
        Field::I64(v)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::F64(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

/// What a [`TraceRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened; `span` is its id, `parent` the enclosing span.
    SpanStart,
    /// A span closed; `span` is its id.
    SpanEnd,
    /// An instantaneous event inside `parent` (the innermost open span).
    Event,
}

impl RecordKind {
    fn as_str(&self) -> &'static str {
        match self {
            RecordKind::SpanStart => "span_start",
            RecordKind::SpanEnd => "span_end",
            RecordKind::Event => "event",
        }
    }
}

/// One record on the bus. Records are totally ordered by `seq`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Monotone sequence number, assigned by the bus.
    pub seq: u64,
    pub kind: RecordKind,
    /// Static name, e.g. `"tape.mount"` or `"query"`.
    pub name: &'static str,
    /// Primary timestamp: simulated seconds.
    pub sim_s: f64,
    /// Secondary timestamp: wall-clock Unix seconds (non-deterministic).
    pub wall_unix_s: f64,
    /// The span this record belongs to (`SpanStart`/`SpanEnd`: the span
    /// itself; `Event`: 0, events hang off `parent`).
    pub span: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Structured payload.
    pub fields: Vec<(&'static str, Field)>,
}

impl TraceRecord {
    /// Serialize as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"name\":");
        json::write_str(&mut out, self.name);
        out.push_str(",\"sim_s\":");
        json::write_f64(&mut out, self.sim_s);
        out.push_str(",\"wall_unix_s\":");
        json::write_f64(&mut out, self.wall_unix_s);
        out.push_str(",\"span\":");
        out.push_str(&self.span.to_string());
        match self.parent {
            Some(p) => {
                out.push_str(",\"parent\":");
                out.push_str(&p.to_string());
            }
            None => out.push_str(",\"parent\":null"),
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_str(&mut out, k);
                out.push(':');
                v.write_json(&mut out);
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// A sink for trace records. Implementations must tolerate being called
/// from any thread (the bus serializes calls behind its lock).
pub trait Recorder: Send {
    fn record(&mut self, rec: &TraceRecord);

    /// A snapshot of retained records, if this sink retains any.
    fn records(&self) -> Option<Vec<TraceRecord>> {
        None
    }

    fn flush(&mut self) {}
}

/// Discards everything.
#[derive(Debug, Default)]
pub struct NoopSink;

impl Recorder for NoopSink {
    fn record(&mut self, _rec: &TraceRecord) {}
}

/// Keeps the most recent `capacity` records in memory.
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    /// Total records ever offered (including ones the ring dropped).
    pub total: u64,
}

impl RingSink {
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            total: 0,
        }
    }
}

impl Recorder for RingSink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(rec.clone());
        self.total += 1;
    }

    fn records(&self) -> Option<Vec<TraceRecord>> {
        Some(self.buf.iter().cloned().collect())
    }
}

/// Appends one JSON object per record to a file.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
}

impl JsonlSink {
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl Recorder for JsonlSink {
    fn record(&mut self, rec: &TraceRecord) {
        // Trace I/O is best-effort; a full disk must not fail a query.
        let _ = writeln!(self.out, "{}", rec.to_json());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Sink selection, carried inside `HeavenConfig`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceConfig {
    /// No tracing (the default); record calls are near-free.
    #[default]
    Off,
    /// Ring buffer of the most recent `capacity` records.
    Memory { capacity: usize },
    /// JSONL file at `path` (plus a small ring for introspection).
    Jsonl { path: PathBuf },
}

struct BusState {
    sink: Box<dyn Recorder>,
    /// Secondary ring kept alongside a JSONL sink so `records()` works
    /// regardless of sink choice. `None` when the primary sink retains.
    mirror: Option<RingSink>,
    stack: Vec<(SpanId, &'static str, f64)>,
    next_span: SpanId,
    seq: u64,
}

struct BusInner {
    enabled: AtomicBool,
    state: Mutex<BusState>,
}

/// Cloneable handle to the trace bus. All clones share one record stream
/// and one span stack.
#[derive(Clone)]
pub struct TraceBus {
    inner: Arc<BusInner>,
}

impl fmt::Debug for TraceBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceBus")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

fn wall_now_s() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

impl TraceBus {
    fn with_sink(sink: Box<dyn Recorder>, mirror: Option<RingSink>, enabled: bool) -> TraceBus {
        TraceBus {
            inner: Arc::new(BusInner {
                enabled: AtomicBool::new(enabled),
                state: Mutex::new(BusState {
                    sink,
                    mirror,
                    stack: Vec::new(),
                    next_span: 1,
                    seq: 0,
                }),
            }),
        }
    }

    /// A disabled bus; every call is a cheap atomic load.
    pub fn noop() -> TraceBus {
        TraceBus::with_sink(Box::new(NoopSink), None, false)
    }

    /// Retain the most recent `capacity` records in memory.
    pub fn ring(capacity: usize) -> TraceBus {
        TraceBus::with_sink(Box::new(RingSink::new(capacity)), None, true)
    }

    /// Stream records to a JSONL file; also mirrors the last 4096 records
    /// in memory so `records()` keeps working.
    pub fn jsonl(path: &Path) -> io::Result<TraceBus> {
        Ok(TraceBus::with_sink(
            Box::new(JsonlSink::create(path)?),
            Some(RingSink::new(4096)),
            true,
        ))
    }

    /// Build from configuration. A JSONL path that cannot be created
    /// degrades to a no-op bus rather than failing system construction.
    pub fn from_config(cfg: &TraceConfig) -> TraceBus {
        match cfg {
            TraceConfig::Off => TraceBus::noop(),
            TraceConfig::Memory { capacity } => TraceBus::ring(*capacity),
            TraceConfig::Jsonl { path } => {
                TraceBus::jsonl(path).unwrap_or_else(|_| TraceBus::noop())
            }
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    fn emit(&self, state: &mut BusState, mut rec: TraceRecord) {
        rec.seq = state.seq;
        state.seq += 1;
        state.sink.record(&rec);
        if let Some(mirror) = state.mirror.as_mut() {
            mirror.record(&rec);
        }
    }

    /// Open a span. Returns its id; pass it to [`TraceBus::span_end`].
    pub fn span_start(
        &self,
        name: &'static str,
        sim_s: f64,
        fields: &[(&'static str, Field)],
    ) -> SpanId {
        if !self.is_enabled() {
            return 0;
        }
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let id = state.next_span;
        state.next_span += 1;
        let parent = state.stack.last().map(|&(p, _, _)| p);
        state.stack.push((id, name, sim_s));
        let rec = TraceRecord {
            seq: 0,
            kind: RecordKind::SpanStart,
            name,
            sim_s,
            wall_unix_s: wall_now_s(),
            span: id,
            parent,
            fields: fields.to_vec(),
        };
        self.emit(&mut state, rec);
        id
    }

    /// Close a span. Any spans left open above it on the stack are closed
    /// first (with the same timestamp), so traces stay well-nested even
    /// if an instrumented function returns early.
    pub fn span_end(&self, id: SpanId, sim_s: f64) {
        if !self.is_enabled() || id == 0 {
            return;
        }
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.stack.iter().any(|&(s, _, _)| s == id) {
            return; // unknown/already closed: ignore
        }
        while let Some((top, name, start_s)) = state.stack.pop() {
            let parent = state.stack.last().map(|&(p, _, _)| p);
            let rec = TraceRecord {
                seq: 0,
                kind: RecordKind::SpanEnd,
                name,
                sim_s,
                wall_unix_s: wall_now_s(),
                span: top,
                parent,
                fields: vec![("dur_s", Field::F64((sim_s - start_s).max(0.0)))],
            };
            self.emit(&mut state, rec);
            if top == id {
                break;
            }
        }
    }

    /// Record an instantaneous event inside the innermost open span.
    pub fn event(&self, name: &'static str, sim_s: f64, fields: &[(&'static str, Field)]) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let parent = state.stack.last().map(|&(p, _, _)| p);
        let rec = TraceRecord {
            seq: 0,
            kind: RecordKind::Event,
            name,
            sim_s,
            wall_unix_s: wall_now_s(),
            span: 0,
            parent,
            fields: fields.to_vec(),
        };
        self.emit(&mut state, rec);
    }

    /// RAII span helper: the span closes (at `end_sim_s` supplied then)
    /// when [`SpanGuard::end`] is called.
    pub fn span(
        &self,
        name: &'static str,
        sim_s: f64,
        fields: &[(&'static str, Field)],
    ) -> SpanGuard {
        SpanGuard {
            bus: self.clone(),
            id: self.span_start(name, sim_s, fields),
        }
    }

    /// Snapshot of retained records (ring sinks and the JSONL mirror).
    pub fn records(&self) -> Vec<TraceRecord> {
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(recs) = state.sink.records() {
            return recs;
        }
        state
            .mirror
            .as_ref()
            .and_then(|m| m.records())
            .unwrap_or_default()
    }

    /// Flush buffered output (JSONL).
    pub fn flush(&self) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.sink.flush();
    }

    /// Depth of the open-span stack (for tests and diagnostics).
    pub fn open_spans(&self) -> usize {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stack
            .len()
    }
}

/// Handle returned by [`TraceBus::span`]; call [`SpanGuard::end`] with the
/// closing simulated timestamp.
#[must_use = "call .end(sim_now) to close the span"]
pub struct SpanGuard {
    bus: TraceBus,
    id: SpanId,
}

impl SpanGuard {
    pub fn id(&self) -> SpanId {
        self.id
    }

    pub fn end(self, sim_s: f64) {
        self.bus.span_end(self.id, sim_s);
    }

    /// Record an event inside this span.
    pub fn event(&self, name: &'static str, sim_s: f64, fields: &[(&'static str, Field)]) {
        self.bus.event(name, sim_s, fields);
    }
}

/// Check that `records` form a well-nested forest: every `SpanEnd` matches
/// the most recently opened unclosed span, and events reference an open
/// (or no) span. Returns the maximum depth seen.
pub fn check_well_nested(records: &[TraceRecord]) -> Result<usize, String> {
    let mut stack: Vec<SpanId> = Vec::new();
    let mut max_depth = 0;
    for rec in records {
        match rec.kind {
            RecordKind::SpanStart => {
                if rec.parent != stack.last().copied() {
                    return Err(format!(
                        "span {} ({}) has parent {:?}, expected {:?}",
                        rec.span,
                        rec.name,
                        rec.parent,
                        stack.last()
                    ));
                }
                stack.push(rec.span);
                max_depth = max_depth.max(stack.len());
            }
            RecordKind::SpanEnd => match stack.pop() {
                Some(top) if top == rec.span => {}
                other => {
                    return Err(format!(
                        "span_end {} ({}) does not match innermost open span {:?}",
                        rec.span, rec.name, other
                    ));
                }
            },
            RecordKind::Event => {
                if rec.parent != stack.last().copied() {
                    return Err(format!(
                        "event {} has parent {:?}, expected {:?}",
                        rec.name,
                        rec.parent,
                        stack.last()
                    ));
                }
            }
        }
    }
    Ok(max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_bus_is_inert() {
        let bus = TraceBus::noop();
        let id = bus.span_start("x", 0.0, &[]);
        assert_eq!(id, 0);
        bus.event("e", 0.0, &[]);
        bus.span_end(id, 1.0);
        assert!(bus.records().is_empty());
    }

    #[test]
    fn spans_nest_and_events_attach() {
        let bus = TraceBus::ring(64);
        let q = bus.span_start("query", 0.0, &[]);
        let f = bus.span_start("st_fetch", 1.0, &[("st", Field::U64(7))]);
        bus.event("tape.mount", 2.0, &[("medium", Field::U64(3))]);
        bus.span_end(f, 3.0);
        bus.span_end(q, 4.0);
        let recs = bus.records();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[1].parent, Some(q));
        assert_eq!(recs[2].parent, Some(f));
        check_well_nested(&recs).unwrap();
        assert_eq!(bus.open_spans(), 0);
    }

    #[test]
    fn early_return_spans_are_autoclosed() {
        let bus = TraceBus::ring(64);
        let outer = bus.span_start("outer", 0.0, &[]);
        let _leaked = bus.span_start("leaked", 1.0, &[]);
        // Closing the outer span force-closes the leaked inner one first.
        bus.span_end(outer, 5.0);
        let recs = bus.records();
        check_well_nested(&recs).unwrap();
        assert_eq!(bus.open_spans(), 0);
    }

    #[test]
    fn ring_capacity_is_bounded() {
        let bus = TraceBus::ring(4);
        for i in 0..10 {
            bus.event("e", i as f64, &[]);
        }
        let recs = bus.records();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].seq, 6);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("heaven_obs_test_{}.jsonl", std::process::id()));
        let bus = TraceBus::jsonl(&path).unwrap();
        let s = bus.span_start("query", 0.5, &[("oid", Field::U64(1))]);
        bus.event("tape.locate", 1.25, &[("cost_s", Field::F64(0.75))]);
        bus.span_end(s, 2.0);
        bus.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"span_start\""));
        assert!(lines[0].contains("\"sim_s\":0.5"));
        assert!(lines[1].contains("\"cost_s\":0.75"));
        assert!(lines[2].contains("\"dur_s\":1.5"));
        // the in-memory mirror still answers records()
        assert_eq!(bus.records().len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_json_escapes_fields() {
        let rec = TraceRecord {
            seq: 1,
            kind: RecordKind::Event,
            name: "e",
            sim_s: 0.0,
            wall_unix_s: 0.0,
            span: 0,
            parent: None,
            fields: vec![("msg", Field::Str("a\"b".into()))],
        };
        assert!(rec.to_json().contains(r#""msg":"a\"b""#));
    }
}
