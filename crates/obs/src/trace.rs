//! The simulated-time trace bus.
//!
//! Spans and events are recorded with a **simulated** timestamp as the
//! primary time axis (the `SimClock` seconds the storage simulation
//! advances) and the wall-clock Unix time as a secondary field. Because
//! the simulation is deterministic, two runs of the same workload
//! produce byte-identical span trees modulo the wall-clock field.
//!
//! The bus keeps an explicit span stack, so instrumentation sites never
//! thread parent ids around: `span_start` pushes, `span_end` pops, and
//! events attach to the innermost open span. This makes well-nestedness
//! a structural property of every trace the bus emits.
//!
//! # The allocation-free fast path
//!
//! `span_start` / `event` / `span_end` must be cheap enough to leave on
//! in production (<5% on a warm query), so the record→sink path performs
//! **zero heap allocations and takes no global lock**:
//!
//! * Names and string field values are interned to `u32` [`Sym`] ids
//!   (warm lookups are lock-free); short dynamic strings are copied
//!   inline into the record instead.
//! * Records are POD [`CompactRecord`]s with a fixed-capacity inline
//!   field array (capacity [`MAX_FIELDS`]; excess fields are dropped).
//! * The ring sink is a preallocated array of slots written through a
//!   seqlock scheme (per-slot version word + one atomic claim cursor),
//!   mirroring crossbeam's `SeqLock`: a torn read is detected by the
//!   version word and skipped.
//! * The JSONL sink serializes **drained batches** off the hot path:
//!   records land in the pending ring and a dedicated writer thread is
//!   unparked every [`JSONL_BATCH`] records to serialize them to the
//!   `BufWriter` (it also wakes periodically for stragglers). The
//!   buffered tail is drained and flushed on `Drop` (including panic
//!   unwind), so aborted runs keep a parseable JSONL prefix.
//! * The span stack is thread-local (keyed by bus id), so pushes and
//!   pops never contend.
//! * The secondary wall-clock timestamp is sampled once per **root**
//!   span, not per record (`wall_unix_s` exists to correlate with
//!   external logs; sub-span granularity would buy nothing and cost a
//!   clock read on every record).
//!
//! # Sampling
//!
//! Production tracing wants less than everything: [`TraceConfig`] carries
//! per-[`Subsystem`] levels (`Off`/`Spans`/`All`), head sampling of
//! bracketed queries (`sample_1_in_n`: keep every n-th query trace), and
//! always-keep-slow tail capture (`keep_slow_s`: a sampled-out query
//! whose simulated duration reaches the threshold is retained anyway).
//! Sampled-out queries divert their records to a side ring and discard
//! them at `query_span_end` unless slow — so the main stream stays
//! well-nested with whole query subtrees present or absent.

use std::cell::{RefCell, UnsafeCell};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::json;
use crate::sym::{Subsystem, Sym};

/// Identifier of a span, unique within one `TraceBus`.
pub type SpanId = u64;

/// Inline fields per record; excess fields are dropped (the widest
/// instrumentation site today uses 6). Keep this tight: every record
/// write sweeps the whole POD through the ring slot, so unused capacity
/// is pure memory traffic on the fast path.
pub const MAX_FIELDS: usize = 6;

/// Inline string-byte budget per record (see [`Field::dyn_str`]).
const SBUF: usize = 40;

/// Longest dynamic string stored inline by [`Field::dyn_str`]; longer
/// ones fall back to interning. Held at `SBUF - 2` so a `SmallStr`
/// always fits the record's inline buffer when it is the only string.
const SMALL_CAP: usize = 38;

/// Pending-ring capacity in front of the JSONL writer.
const JSONL_PENDING: usize = 8192;

/// Unpark the JSONL writer thread every this many pending records.
const JSONL_BATCH: u64 = 512;

/// How long the JSONL writer thread sleeps between unparks; bounds how
/// stale the file can be while the pending backlog sits under a batch.
const JSONL_WRITER_NAP: Duration = Duration::from_millis(100);

/// Side-ring capacity for sampled-out queries awaiting the slow/fast
/// verdict. A sampled-out query emitting more than this is dropped
/// entirely (with a `trace.slow_query_dropped` marker if it was slow).
const SIDE_CAP: usize = 4096;

// -- fields -------------------------------------------------------------------

/// A short string stored inline (no heap), built by [`Field::dyn_str`].
#[derive(Debug, Clone, Copy)]
pub struct SmallStr {
    len: u8,
    buf: [u8; SMALL_CAP],
}

impl SmallStr {
    fn new(s: &str) -> Option<SmallStr> {
        if s.len() > SMALL_CAP {
            return None;
        }
        let mut buf = [0u8; SMALL_CAP];
        buf[..s.len()].copy_from_slice(s.as_bytes());
        Some(SmallStr {
            len: s.len() as u8,
            buf,
        })
    }

    pub fn as_str(&self) -> &str {
        // SAFETY: built from a str's bytes in `new`.
        unsafe { std::str::from_utf8_unchecked(&self.buf[..self.len as usize]) }
    }
}

/// A typed field value attached to a span or event.
///
/// String payloads come in four flavors so the hot path never allocates:
/// `StaticStr` for literals, `Sym` for pre-interned ids, `Small` (via
/// [`Field::dyn_str`]) for short dynamic strings copied inline, and
/// `Str` as the compatibility spill for owned strings. All four compare
/// equal by content and serialize identically.
#[derive(Debug, Clone)]
pub enum Field {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    StaticStr(&'static str),
    Small(SmallStr),
    Sym(Sym),
}

impl Field {
    /// Wrap a dynamic string without allocating: inline if it fits
    /// ([`SmallStr`]), interned otherwise.
    pub fn dyn_str(s: &str) -> Field {
        match SmallStr::new(s) {
            Some(small) => Field::Small(small),
            None => Field::Sym(Sym::intern(s)),
        }
    }

    /// The string payload, if this is a string-flavored field.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Field::Str(s) => Some(s),
            Field::StaticStr(s) => Some(s),
            Field::Small(s) => Some(s.as_str()),
            Field::Sym(s) => Some(s.resolve()),
            _ => None,
        }
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Field::U64(v) => {
                out.push_str(&v.to_string());
            }
            Field::I64(v) => {
                out.push_str(&v.to_string());
            }
            Field::F64(v) => json::write_f64(out, *v),
            _ => json::write_str(out, self.as_str().unwrap_or_default()),
        }
    }
}

impl PartialEq for Field {
    fn eq(&self, other: &Field) -> bool {
        match (self, other) {
            (Field::U64(a), Field::U64(b)) => a == b,
            (Field::I64(a), Field::I64(b)) => a == b,
            (Field::F64(a), Field::F64(b)) => a == b,
            // String flavors compare by content.
            _ => match (self.as_str(), other.as_str()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::U64(v) => write!(f, "{v}"),
            Field::I64(v) => write!(f, "{v}"),
            Field::F64(v) => write!(f, "{v:.6}"),
            _ => write!(f, "{}", self.as_str().unwrap_or_default()),
        }
    }
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Field {
        Field::I64(v)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::F64(v)
    }
}

impl From<&'static str> for Field {
    fn from(v: &'static str) -> Field {
        Field::StaticStr(v)
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

impl From<Sym> for Field {
    fn from(v: Sym) -> Field {
        Field::Sym(v)
    }
}

/// What a [`TraceRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened; `span` is its id, `parent` the enclosing span.
    SpanStart,
    /// A span closed; `span` is its id.
    SpanEnd,
    /// An instantaneous event inside `parent` (the innermost open span).
    Event,
    /// A causal edge between two spans that may live on different
    /// threads/sessions: `span` is the *linking* span (e.g. a waiter's
    /// `heaven.st_fetch`), `parent` the *linked-to* span (e.g. the shared
    /// `sched.batch` that served it). Links carry no nesting semantics.
    Link,
}

impl RecordKind {
    fn as_str(&self) -> &'static str {
        match self {
            RecordKind::SpanStart => "span_start",
            RecordKind::SpanEnd => "span_end",
            RecordKind::Event => "event",
            RecordKind::Link => "link",
        }
    }

    fn from_u8(v: u8) -> RecordKind {
        match v {
            0 => RecordKind::SpanStart,
            1 => RecordKind::SpanEnd,
            3 => RecordKind::Link,
            _ => RecordKind::Event,
        }
    }
}

/// One record on the bus. Records are totally ordered by `seq`.
///
/// This is the *reconstructed* view handed out by [`TraceBus::records`];
/// internally the bus stores POD [`CompactRecord`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Monotone sequence number, assigned by the bus.
    pub seq: u64,
    pub kind: RecordKind,
    /// Static name, e.g. `"tape.mount"` or `"query"`.
    pub name: &'static str,
    /// Primary timestamp: simulated seconds.
    pub sim_s: f64,
    /// Secondary timestamp: wall-clock Unix seconds (non-deterministic).
    pub wall_unix_s: f64,
    /// The span this record belongs to (`SpanStart`/`SpanEnd`: the span
    /// itself; `Event`: 0, events hang off `parent`).
    pub span: SpanId,
    /// Enclosing span, if any (for [`RecordKind::Link`]: the linked-to
    /// span).
    pub parent: Option<SpanId>,
    /// Session that emitted this record, if the emitting thread declared
    /// one via [`TraceBus::set_session`].
    pub session: Option<u64>,
    /// Structured payload.
    pub fields: Vec<(&'static str, Field)>,
}

impl TraceRecord {
    /// Serialize as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"name\":");
        json::write_str(&mut out, self.name);
        out.push_str(",\"sim_s\":");
        json::write_f64(&mut out, self.sim_s);
        out.push_str(",\"wall_unix_s\":");
        json::write_f64(&mut out, self.wall_unix_s);
        out.push_str(",\"span\":");
        out.push_str(&self.span.to_string());
        match self.parent {
            Some(p) => {
                out.push_str(",\"parent\":");
                out.push_str(&p.to_string());
            }
            None => out.push_str(",\"parent\":null"),
        }
        if let Some(s) = self.session {
            out.push_str(",\"session\":");
            out.push_str(&s.to_string());
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_str(&mut out, k);
                out.push(':');
                v.write_json(&mut out);
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

// -- compact records ----------------------------------------------------------

const TAG_U64: u8 = 0;
const TAG_I64: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_SYM: u8 = 3;
/// Inline string in the record's `sbuf`; bits = `offset << 32 | len`.
const TAG_STR: u8 = 4;

#[derive(Clone, Copy)]
struct CompactField {
    key: Sym,
    tag: u8,
    bits: u64,
}

const NIL_FIELD: CompactField = CompactField {
    key: Sym(0),
    tag: TAG_U64,
    bits: 0,
};

/// The POD record stored in ring slots: fixed-size, `Copy`, no heap.
#[derive(Clone, Copy)]
struct CompactRecord {
    seq: u64,
    sim_s: f64,
    wall_s: f64,
    span: u64,
    /// 0 = no parent (span ids start at 1).
    parent: u64,
    /// 0 = no session declared (session ids start at 1).
    session: u64,
    name: Sym,
    kind: u8,
    nf: u8,
    sused: u8,
    fields: [CompactField; MAX_FIELDS],
    sbuf: [u8; SBUF],
}

impl CompactRecord {
    const EMPTY: CompactRecord = CompactRecord {
        seq: 0,
        sim_s: 0.0,
        wall_s: 0.0,
        span: 0,
        parent: 0,
        session: 0,
        name: Sym(0),
        kind: 0,
        nf: 0,
        sused: 0,
        fields: [NIL_FIELD; MAX_FIELDS],
        sbuf: [0; SBUF],
    };

    /// Copy a dynamic string into `sbuf` if it fits, else intern it.
    fn encode_str(&mut self, key: Sym, s: &str) -> CompactField {
        let off = self.sused as usize;
        if off + s.len() <= SBUF {
            self.sbuf[off..off + s.len()].copy_from_slice(s.as_bytes());
            self.sused = (off + s.len()) as u8;
            CompactField {
                key,
                tag: TAG_STR,
                bits: ((off as u64) << 32) | s.len() as u64,
            }
        } else {
            CompactField {
                key,
                tag: TAG_SYM,
                bits: Sym::intern(s).0 as u64,
            }
        }
    }

    fn encode_fields(&mut self, fields: &[(&'static str, Field)]) {
        let mut nf = 0;
        for (k, v) in fields.iter().take(MAX_FIELDS) {
            let key = Sym::intern_static(k);
            self.fields[nf] = match v {
                Field::U64(x) => CompactField {
                    key,
                    tag: TAG_U64,
                    bits: *x,
                },
                Field::I64(x) => CompactField {
                    key,
                    tag: TAG_I64,
                    bits: *x as u64,
                },
                Field::F64(x) => CompactField {
                    key,
                    tag: TAG_F64,
                    bits: x.to_bits(),
                },
                Field::Sym(s) => CompactField {
                    key,
                    tag: TAG_SYM,
                    bits: s.0 as u64,
                },
                Field::StaticStr(s) => CompactField {
                    key,
                    tag: TAG_SYM,
                    bits: Sym::intern_static(s).0 as u64,
                },
                Field::Small(s) => self.encode_str(key, s.as_str()),
                Field::Str(s) => self.encode_str(key, s),
            };
            nf += 1;
        }
        self.nf = nf as u8;
    }

    fn inline_str(&self, bits: u64) -> &str {
        let off = (bits >> 32) as usize;
        let len = (bits & 0xffff_ffff) as usize;
        // SAFETY: encode_str stored valid UTF-8 at this range.
        unsafe { std::str::from_utf8_unchecked(&self.sbuf[off..off + len]) }
    }

    fn decode_field(&self, i: usize) -> (&'static str, Field) {
        let f = &self.fields[i];
        let v = match f.tag {
            TAG_U64 => Field::U64(f.bits),
            TAG_I64 => Field::I64(f.bits as i64),
            TAG_F64 => Field::F64(f64::from_bits(f.bits)),
            TAG_SYM => Field::StaticStr(Sym(f.bits as u32).resolve()),
            _ => Field::Str(self.inline_str(f.bits).to_string()),
        };
        (f.key.resolve(), v)
    }

    fn to_record(self) -> TraceRecord {
        TraceRecord {
            seq: self.seq,
            kind: RecordKind::from_u8(self.kind),
            name: self.name.resolve(),
            sim_s: self.sim_s,
            wall_unix_s: self.wall_s,
            span: self.span,
            parent: (self.parent != 0).then_some(self.parent),
            session: (self.session != 0).then_some(self.session),
            fields: (0..self.nf as usize)
                .map(|i| self.decode_field(i))
                .collect(),
        }
    }

    /// Serialize directly (byte-identical to `to_record().to_json()`),
    /// appending to `out` without intermediate allocations beyond `out`.
    ///
    /// `memo` caches formatted floats across records: `wall_unix_s` is a
    /// full-precision Unix timestamp — the worst case for shortest
    /// round-trip formatting — and is constant across a root span, while
    /// adjacent records frequently share `sim_s`.
    fn write_json(&self, out: &mut String, memo: &mut JsonMemo) {
        out.push_str("{\"seq\":");
        json::write_u64(out, self.seq);
        out.push_str(",\"kind\":\"");
        out.push_str(RecordKind::from_u8(self.kind).as_str());
        out.push_str("\",\"name\":");
        json::write_str(out, self.name.resolve());
        out.push_str(",\"sim_s\":");
        memo.sim.write(out, self.sim_s);
        out.push_str(",\"wall_unix_s\":");
        memo.wall.write(out, self.wall_s);
        out.push_str(",\"span\":");
        json::write_u64(out, self.span);
        if self.parent != 0 {
            out.push_str(",\"parent\":");
            json::write_u64(out, self.parent);
        } else {
            out.push_str(",\"parent\":null");
        }
        if self.session != 0 {
            out.push_str(",\"session\":");
            json::write_u64(out, self.session);
        }
        if self.nf > 0 {
            out.push_str(",\"fields\":{");
            for i in 0..self.nf as usize {
                if i > 0 {
                    out.push(',');
                }
                let f = &self.fields[i];
                json::write_str(out, f.key.resolve());
                out.push(':');
                match f.tag {
                    TAG_U64 => json::write_u64(out, f.bits),
                    TAG_I64 => json::write_i64(out, f.bits as i64),
                    TAG_F64 => memo.field.write(out, f64::from_bits(f.bits)),
                    TAG_SYM => json::write_str(out, Sym(f.bits as u32).resolve()),
                    _ => json::write_str(out, self.inline_str(f.bits)),
                }
            }
            out.push('}');
        }
        out.push('}');
    }
}

/// One memoized formatted `f64`: re-renders only when the bit pattern
/// changes. Seeded with `u64::MAX` (a NaN), whose rendering is `"null"`,
/// so the seed is self-consistent.
struct F64Memo {
    bits: u64,
    text: String,
}

impl Default for F64Memo {
    fn default() -> F64Memo {
        F64Memo {
            bits: u64::MAX,
            text: "null".to_string(),
        }
    }
}

impl F64Memo {
    fn write(&mut self, out: &mut String, v: f64) {
        if v.to_bits() != self.bits {
            self.bits = v.to_bits();
            self.text.clear();
            json::write_f64(&mut self.text, v);
        }
        out.push_str(&self.text);
    }
}

/// Float-formatting caches threaded through [`CompactRecord::write_json`].
#[derive(Default)]
struct JsonMemo {
    wall: F64Memo,
    sim: F64Memo,
    /// Float *field* values (e.g. a warm query's constant `cost_s`).
    field: F64Memo,
}

// -- seqlock ring -------------------------------------------------------------

/// One ring slot: a version word and the record payload. The version is
/// `2*claim + 1` while the claiming writer copies in, `2*claim + 2` once
/// the record for `claim` is fully published.
struct Slot {
    ver: AtomicU64,
    rec: UnsafeCell<CompactRecord>,
}

/// Preallocated lock-free ring of POD records (seqlock per slot, one
/// atomic claim cursor). Writers never block; readers detect and skip
/// torn slots. Capacity is rounded up to a power of two.
struct SlotRing {
    mask: u64,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

// SAFETY: slot payloads are only read through the seqlock protocol,
// which detects concurrent writers via the version word.
unsafe impl Sync for SlotRing {}

impl SlotRing {
    fn new(capacity: usize) -> SlotRing {
        let cap = capacity.max(2).next_power_of_two();
        SlotRing {
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
            slots: (0..cap)
                .map(|_| Slot {
                    // Version 0 never matches any claim's "published"
                    // value (2*claim + 2 >= 2), so unwritten slots read
                    // as absent.
                    ver: AtomicU64::new(0),
                    rec: UnsafeCell::new(CompactRecord::EMPTY),
                })
                .collect(),
        }
    }

    fn capacity(&self) -> u64 {
        self.mask + 1
    }

    fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    fn push(&self, rec: &CompactRecord) -> u64 {
        self.push_with(|slot| *slot = *rec)
    }

    /// Claim a slot and let `fill` write the record in place, inside the
    /// seqlock write section. The slot still holds whatever record lived
    /// there a lap ago: `fill` must set every header field, and readers
    /// never look past `nf` fields or `sused` string bytes, so the stale
    /// tail needs no zeroing. Building in place spares the fast path a
    /// stack-local zero-init plus a whole-record copy per record.
    fn push_with(&self, fill: impl FnOnce(&mut CompactRecord)) -> u64 {
        let claim = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(claim & self.mask) as usize];
        // Acquire on the RMW keeps the payload write from being
        // reordered before the version bump (crossbeam SeqLock's write
        // protocol); readers seeing the payload also see the odd version.
        slot.ver.swap(claim * 2 + 1, Ordering::AcqRel);
        // SAFETY: the claim cursor hands each claim to exactly one
        // writer; a lapped writer for the same slot bumped the version
        // first, so readers discard whatever they copied.
        fill(unsafe { &mut *slot.rec.get() });
        slot.ver.store(claim * 2 + 2, Ordering::Release);
        claim
    }

    /// Read the record for `claim`, if still present and fully written.
    fn read(&self, claim: u64) -> Option<CompactRecord> {
        let slot = &self.slots[(claim & self.mask) as usize];
        let want = claim * 2 + 2;
        if slot.ver.load(Ordering::Acquire) != want {
            return None;
        }
        // SAFETY: the slot may be concurrently overwritten; the version
        // re-check below (after an Acquire fence) detects that and
        // discards the copy.
        let rec = unsafe { std::ptr::read(slot.rec.get()) };
        fence(Ordering::Acquire);
        if slot.ver.load(Ordering::Relaxed) != want {
            return None;
        }
        Some(rec)
    }
}

// -- jsonl output -------------------------------------------------------------

struct JsonlFile {
    out: BufWriter<File>,
    scratch: String,
    memo: JsonMemo,
    /// Next claim to drain from the pending ring.
    tail: u64,
    /// Records the pending ring overwrote before we drained them.
    lost: u64,
}

struct JsonlOut {
    state: Mutex<JsonlFile>,
    /// Mirror of `JsonlFile::tail`, readable without the lock so the hot
    /// path can check the batch threshold cheaply.
    tail: AtomicU64,
    /// The writer thread to unpark when a batch is pending. Unset only if
    /// the thread could not be spawned (the hot path then drains inline).
    writer: OnceLock<std::thread::Thread>,
}

impl JsonlOut {
    fn create(path: &Path) -> io::Result<JsonlOut> {
        Ok(JsonlOut {
            state: Mutex::new(JsonlFile {
                // A wide buffer: trace records are ~200 bytes and the
                // stock 8 KB buffer would hit write(2) every few queries.
                out: BufWriter::with_capacity(1 << 20, File::create(path)?),
                scratch: String::with_capacity(64 * 1024),
                memo: JsonMemo::default(),
                tail: 0,
                lost: 0,
            }),
            tail: AtomicU64::new(0),
            writer: OnceLock::new(),
        })
    }
}

/// Body of the JSONL writer thread: drain whenever unparked (a batch is
/// pending) or after a nap (stragglers). Holds only a `Weak` to the bus,
/// so dropping the last `TraceBus` clone ends the thread.
fn jsonl_writer_loop(weak: Weak<BusInner>) {
    loop {
        std::thread::park_timeout(JSONL_WRITER_NAP);
        let Some(inner) = weak.upgrade() else { return };
        drain_jsonl(&inner, false);
    }
}

// -- configuration ------------------------------------------------------------

/// How much of a subsystem's instrumentation to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Nothing from this subsystem.
    Off,
    /// Spans only (events dropped).
    Spans,
    /// Spans and events (the default).
    #[default]
    All,
}

impl TraceLevel {
    /// Parse `"off"` / `"spans"` / `"all"`.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "spans" => Some(TraceLevel::Spans),
            "all" => Some(TraceLevel::All),
            _ => None,
        }
    }
}

/// Sink selection, carried inside [`TraceConfig`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceSink {
    /// No tracing (the default); record calls are near-free.
    #[default]
    Off,
    /// Ring buffer of the most recent `capacity` records (rounded up to
    /// a power of two).
    Memory { capacity: usize },
    /// JSONL file at `path` (plus a pending ring that doubles as the
    /// in-memory mirror for `records()`).
    Jsonl { path: PathBuf },
}

/// Trace configuration, carried inside `HeavenConfig`: sink choice plus
/// the production-tracing knobs (head sampling, slow-tail capture,
/// per-subsystem levels).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    pub sink: TraceSink,
    /// Keep every n-th bracketed query trace (0 or 1 = keep all).
    pub sample_1_in_n: u64,
    /// A sampled-out query whose simulated duration reaches this many
    /// seconds is kept anyway (`INFINITY` = never).
    pub keep_slow_s: f64,
    /// Per-subsystem record levels, indexed by `Subsystem as usize`.
    pub levels: [TraceLevel; Subsystem::COUNT],
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            sink: TraceSink::Off,
            sample_1_in_n: 1,
            keep_slow_s: f64::INFINITY,
            levels: [TraceLevel::All; Subsystem::COUNT],
        }
    }
}

impl TraceConfig {
    /// No tracing (the default).
    pub fn off() -> TraceConfig {
        TraceConfig::default()
    }

    /// Ring buffer of the most recent `capacity` records.
    pub fn ring(capacity: usize) -> TraceConfig {
        TraceConfig {
            sink: TraceSink::Memory { capacity },
            ..TraceConfig::default()
        }
    }

    /// Stream records to a JSONL file.
    pub fn jsonl(path: impl Into<PathBuf>) -> TraceConfig {
        TraceConfig {
            sink: TraceSink::Jsonl { path: path.into() },
            ..TraceConfig::default()
        }
    }

    /// Keep every n-th bracketed query trace (head sampling).
    pub fn with_sample(mut self, n: u64) -> TraceConfig {
        self.sample_1_in_n = n;
        self
    }

    /// Keep sampled-out queries at least this slow (simulated seconds).
    pub fn with_keep_slow(mut self, s: f64) -> TraceConfig {
        self.keep_slow_s = s;
        self
    }

    /// Set one subsystem's record level.
    pub fn with_level(mut self, sub: Subsystem, level: TraceLevel) -> TraceConfig {
        self.levels[sub as usize] = level;
        self
    }
}

// -- thread-local span stacks -------------------------------------------------

#[derive(Clone, Copy)]
struct Frame {
    id: SpanId,
    name: Sym,
    start_s: f64,
}

struct SpanStack {
    bus_id: u64,
    /// Session this thread currently works on behalf of (0 = none),
    /// stamped onto every record; see [`TraceBus::set_session`].
    session: u64,
    frames: Vec<Frame>,
}

thread_local! {
    static STACKS: RefCell<Vec<SpanStack>> = const { RefCell::new(Vec::new()) };
}

fn with_stack<R>(bus_id: u64, f: impl FnOnce(&mut SpanStack) -> R) -> R {
    STACKS.with(|s| {
        let mut v = s.borrow_mut();
        let idx = match v.iter().position(|st| st.bus_id == bus_id) {
            Some(i) => i,
            None => {
                if v.len() >= 16 {
                    // Drop stacks of (likely dead) buses with no open spans.
                    v.retain(|st| !st.frames.is_empty());
                }
                v.push(SpanStack {
                    bus_id,
                    session: 0,
                    frames: Vec::with_capacity(32),
                });
                v.len() - 1
            }
        };
        f(&mut v[idx])
    })
}

// -- the bus ------------------------------------------------------------------

struct BusInner {
    enabled: AtomicBool,
    /// Keys this bus's thread-local span stacks.
    bus_id: u64,
    levels: [TraceLevel; Subsystem::COUNT],
    seq: AtomicU64,
    next_span: AtomicU64,
    /// Wall-clock Unix seconds (`f64` bits), refreshed once per root
    /// span: per-record clock reads would dominate the fast path and the
    /// field only exists to correlate traces with external logs.
    wall_cache: AtomicU64,
    /// The retained ring (`Memory` sink) or the JSONL pending ring.
    ring: Option<SlotRing>,
    jsonl: Option<JsonlOut>,
    // Sampling state.
    sample_n: u64,
    keep_slow_s: f64,
    sample_counter: AtomicU64,
    /// While set, records divert to `side` awaiting the slow/fast verdict.
    diverted: AtomicBool,
    side: Option<SlotRing>,
    /// Side-ring claim at which the current diverted query began.
    side_start: AtomicU64,
    /// Slow sampled-out queries whose side buffer overflowed.
    dropped_slow: AtomicU64,
}

impl Drop for BusInner {
    fn drop(&mut self) {
        // Durability: drain + flush the JSONL tail even on panic unwind,
        // so an aborted run leaves a parseable trace prefix.
        drain_jsonl(self, true);
    }
}

fn drain_jsonl(inner: &BusInner, force_flush: bool) {
    let (Some(j), Some(ring)) = (&inner.jsonl, &inner.ring) else {
        return;
    };
    let mut f = j.state.lock().unwrap_or_else(|e| e.into_inner());
    let head = ring.head();
    let oldest = head.saturating_sub(ring.capacity());
    if f.tail < oldest {
        f.lost += oldest - f.tail;
        f.tail = oldest;
    }
    let JsonlFile {
        out,
        scratch,
        memo,
        tail,
        lost: _,
    } = &mut *f;
    scratch.clear();
    while *tail < head {
        match ring.read(*tail) {
            Some(rec) => {
                rec.write_json(scratch, memo);
                scratch.push('\n');
                *tail += 1;
            }
            None => break, // writer still in this slot; next drain gets it
        }
    }
    // Trace I/O is best-effort; a full disk must not fail a query.
    let _ = out.write_all(scratch.as_bytes());
    j.tail.store(*tail, Ordering::Relaxed);
    if force_flush {
        let _ = out.flush();
    }
}

/// Cloneable handle to the trace bus. All clones share one record stream
/// and one span stack.
#[derive(Clone)]
pub struct TraceBus {
    inner: Arc<BusInner>,
}

impl fmt::Debug for TraceBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceBus")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

fn wall_now_s() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

static NEXT_BUS_ID: AtomicU64 = AtomicU64::new(1);

impl TraceBus {
    fn build(cfg: &TraceConfig) -> io::Result<TraceBus> {
        let (enabled, ring, jsonl) = match &cfg.sink {
            TraceSink::Off => (false, None, None),
            TraceSink::Memory { capacity } => (true, Some(SlotRing::new(*capacity)), None),
            TraceSink::Jsonl { path } => (
                true,
                Some(SlotRing::new(JSONL_PENDING)),
                Some(JsonlOut::create(path)?),
            ),
        };
        let sample_n = cfg.sample_1_in_n.max(1);
        let bus = TraceBus {
            inner: Arc::new(BusInner {
                enabled: AtomicBool::new(enabled),
                bus_id: NEXT_BUS_ID.fetch_add(1, Ordering::Relaxed),
                levels: cfg.levels,
                seq: AtomicU64::new(0),
                next_span: AtomicU64::new(1),
                wall_cache: AtomicU64::new(wall_now_s().to_bits()),
                ring,
                jsonl,
                sample_n,
                keep_slow_s: cfg.keep_slow_s,
                sample_counter: AtomicU64::new(0),
                diverted: AtomicBool::new(false),
                side: (sample_n > 1).then(|| SlotRing::new(SIDE_CAP)),
                side_start: AtomicU64::new(0),
                dropped_slow: AtomicU64::new(0),
            }),
        };
        if let Some(j) = &bus.inner.jsonl {
            // Serialization runs on a dedicated thread; the hot path only
            // pushes into the pending ring and unparks it per batch. If
            // the spawn fails, `sink_main` falls back to inline drains.
            let weak = Arc::downgrade(&bus.inner);
            if let Ok(handle) = std::thread::Builder::new()
                .name("heaven-trace-jsonl".into())
                .spawn(move || jsonl_writer_loop(weak))
            {
                let _ = j.writer.set(handle.thread().clone());
            }
        }
        if enabled && sample_n > 1 {
            // Announce the sampling rate in-band so consumers
            // (heaven-prof) can rescale totals. Only emitted when
            // sampling is on, so unsampled traces are unchanged.
            let mut fields: Vec<(&'static str, Field)> =
                vec![("sample_1_in_n", Field::U64(sample_n))];
            if cfg.keep_slow_s.is_finite() {
                fields.push(("keep_slow_s", Field::F64(cfg.keep_slow_s)));
            }
            bus.event("trace.config", 0.0, &fields);
        }
        Ok(bus)
    }

    /// A disabled bus; every call is a cheap atomic load.
    pub fn noop() -> TraceBus {
        TraceBus::build(&TraceConfig::off()).expect("noop bus cannot fail")
    }

    /// Retain the most recent `capacity` records in memory.
    pub fn ring(capacity: usize) -> TraceBus {
        TraceBus::build(&TraceConfig::ring(capacity)).expect("ring bus cannot fail")
    }

    /// Stream records to a JSONL file; the pending ring doubles as an
    /// in-memory mirror so `records()` keeps working.
    pub fn jsonl(path: &Path) -> io::Result<TraceBus> {
        TraceBus::build(&TraceConfig::jsonl(path))
    }

    /// Build from configuration. A JSONL path that cannot be created
    /// degrades to a no-op bus rather than failing system construction.
    pub fn from_config(cfg: &TraceConfig) -> TraceBus {
        TraceBus::build(cfg).unwrap_or_else(|_| TraceBus::noop())
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Effective head-sampling rate (1 = keep everything).
    pub fn sample_1_in_n(&self) -> u64 {
        self.inner.sample_n
    }

    /// Slow sampled-out queries dropped because their trace outgrew the
    /// side buffer.
    pub fn dropped_slow(&self) -> u64 {
        self.inner.dropped_slow.load(Ordering::Relaxed)
    }

    /// Route an already-built record to the main ring (slow-query
    /// promotion); the hot path builds records in place via `emit`.
    fn sink_main(&self, rec: &CompactRecord) {
        let inner = &*self.inner;
        let Some(ring) = &inner.ring else { return };
        ring.push(rec);
        if let Some(j) = &inner.jsonl {
            if ring.head().wrapping_sub(j.tail.load(Ordering::Relaxed)) >= JSONL_BATCH {
                match j.writer.get() {
                    Some(t) => t.unpark(),
                    None => drain_jsonl(inner, false),
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        kind: RecordKind,
        name: Sym,
        sim_s: f64,
        span: u64,
        parent: u64,
        session: u64,
        fields: &[(&'static str, Field)],
    ) {
        let inner = &*self.inner;
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let wall_s = f64::from_bits(inner.wall_cache.load(Ordering::Relaxed));
        // Build the record directly in its ring slot (see `push_with`):
        // the hot path writes only the bytes this record actually uses.
        let fill = |rec: &mut CompactRecord| {
            rec.seq = seq;
            rec.sim_s = sim_s;
            rec.wall_s = wall_s;
            rec.span = span;
            rec.parent = parent;
            rec.session = session;
            rec.name = name;
            rec.kind = kind as u8;
            rec.sused = 0;
            rec.encode_fields(fields);
        };
        if inner.diverted.load(Ordering::Relaxed) {
            if let Some(side) = &inner.side {
                side.push_with(fill);
            }
            return;
        }
        let Some(ring) = &inner.ring else { return };
        ring.push_with(fill);
        if let Some(j) = &inner.jsonl {
            if ring.head().wrapping_sub(j.tail.load(Ordering::Relaxed)) >= JSONL_BATCH {
                match j.writer.get() {
                    Some(t) => t.unpark(),
                    None => drain_jsonl(inner, false),
                }
            }
        }
    }

    /// Declare the session the **current thread** works on behalf of;
    /// every subsequent record emitted from this thread carries it (0
    /// clears). Session identity survives span pushes/pops, so a worker
    /// thread sets it once per unit of session work.
    pub fn set_session(&self, session: u64) {
        if !self.is_enabled() {
            return;
        }
        with_stack(self.inner.bus_id, |st| st.session = session);
    }

    /// The current thread's declared session (0 = none).
    pub fn current_session(&self) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        with_stack(self.inner.bus_id, |st| st.session)
    }

    /// Record a causal link `from_span → to_span` (e.g. a waiter's fetch
    /// span to the shared `sched.batch` span that served it). Links cross
    /// thread and session boundaries, carry no nesting semantics, and
    /// ride the same allocation-free compact-record path as spans.
    /// No-op if either span id is 0 (disabled or level-filtered span).
    pub fn link(
        &self,
        name: &'static str,
        sim_s: f64,
        from_span: SpanId,
        to_span: SpanId,
        fields: &[(&'static str, Field)],
    ) {
        if !self.is_enabled() || from_span == 0 || to_span == 0 {
            return;
        }
        let sym = Sym::intern_static(name);
        if self.inner.levels[sym.subsystem() as usize] < TraceLevel::Spans {
            return;
        }
        let session = with_stack(self.inner.bus_id, |st| st.session);
        self.emit(
            RecordKind::Link,
            sym,
            sim_s,
            from_span,
            to_span,
            session,
            fields,
        );
    }

    /// Open a span. Returns its id; pass it to [`TraceBus::span_end`].
    pub fn span_start(
        &self,
        name: &'static str,
        sim_s: f64,
        fields: &[(&'static str, Field)],
    ) -> SpanId {
        if !self.is_enabled() {
            return 0;
        }
        let sym = Sym::intern_static(name);
        if self.inner.levels[sym.subsystem() as usize] < TraceLevel::Spans {
            return 0; // children attach to the grandparent: still nested
        }
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let (parent, session) = with_stack(self.inner.bus_id, |st| {
            let parent = st.frames.last().map_or(0, |f| f.id);
            st.frames.push(Frame {
                id,
                name: sym,
                start_s: sim_s,
            });
            (parent, st.session)
        });
        if parent == 0 {
            // Root span: refresh the coarse wall-clock stamp shared by
            // every record in this subtree.
            self.inner
                .wall_cache
                .store(wall_now_s().to_bits(), Ordering::Relaxed);
        }
        self.emit(
            RecordKind::SpanStart,
            sym,
            sim_s,
            id,
            parent,
            session,
            fields,
        );
        id
    }

    /// Close a span. Any spans left open above it on the stack are closed
    /// first (with the same timestamp), so traces stay well-nested even
    /// if an instrumented function returns early.
    pub fn span_end(&self, id: SpanId, sim_s: f64) {
        if !self.is_enabled() || id == 0 {
            return;
        }
        with_stack(self.inner.bus_id, |st| {
            if !st.frames.iter().any(|f| f.id == id) {
                return; // unknown/already closed: ignore
            }
            while let Some(frame) = st.frames.pop() {
                let parent = st.frames.last().map_or(0, |f| f.id);
                let dur = (sim_s - frame.start_s).max(0.0);
                self.emit(
                    RecordKind::SpanEnd,
                    frame.name,
                    sim_s,
                    frame.id,
                    parent,
                    st.session,
                    &[("dur_s", Field::F64(dur))],
                );
                if frame.id == id {
                    break;
                }
            }
        });
    }

    /// Record an instantaneous event inside the innermost open span.
    pub fn event(&self, name: &'static str, sim_s: f64, fields: &[(&'static str, Field)]) {
        if !self.is_enabled() {
            return;
        }
        let sym = Sym::intern_static(name);
        if self.inner.levels[sym.subsystem() as usize] < TraceLevel::All {
            return;
        }
        let (parent, session) = with_stack(self.inner.bus_id, |st| {
            (st.frames.last().map_or(0, |f| f.id), st.session)
        });
        self.emit(RecordKind::Event, sym, sim_s, 0, parent, session, fields);
    }

    /// RAII span helper: the span closes (at `end_sim_s` supplied then)
    /// when [`SpanGuard::end`] is called.
    pub fn span(
        &self,
        name: &'static str,
        sim_s: f64,
        fields: &[(&'static str, Field)],
    ) -> SpanGuard {
        SpanGuard {
            bus: self.clone(),
            id: self.span_start(name, sim_s, fields),
        }
    }

    /// Open a **bracketed query** span, applying head sampling: every
    /// n-th query records normally; the rest divert to a side buffer and
    /// are discarded at [`TraceBus::query_span_end`] unless slower than
    /// `keep_slow_s`.
    pub fn query_span_start(
        &self,
        name: &'static str,
        sim_s: f64,
        fields: &[(&'static str, Field)],
    ) -> SpanId {
        if !self.is_enabled() {
            return 0;
        }
        let inner = &*self.inner;
        if let Some(side) = &inner.side {
            let c = inner.sample_counter.fetch_add(1, Ordering::Relaxed);
            if !c.is_multiple_of(inner.sample_n) && !inner.diverted.load(Ordering::Relaxed) {
                inner.side_start.store(side.head(), Ordering::Relaxed);
                inner.diverted.store(true, Ordering::Relaxed);
            }
        }
        self.span_start(name, sim_s, fields)
    }

    /// Close a bracketed query span and resolve its sampling verdict.
    pub fn query_span_end(&self, id: SpanId, sim_s: f64) {
        let start_s = with_stack(self.inner.bus_id, |st| {
            st.frames.iter().find(|f| f.id == id).map(|f| f.start_s)
        });
        self.span_end(id, sim_s);
        let inner = &*self.inner;
        if !inner.diverted.load(Ordering::Relaxed) {
            return;
        }
        inner.diverted.store(false, Ordering::Relaxed);
        let Some(side) = &inner.side else { return };
        let dur = start_s.map_or(0.0, |s| (sim_s - s).max(0.0));
        if dur < inner.keep_slow_s {
            return; // fast sampled-out query: records are discarded
        }
        // Slow: promote the diverted records into the main stream.
        let from = inner.side_start.load(Ordering::Relaxed);
        let to = side.head();
        if to.saturating_sub(from) > side.capacity() {
            // The side ring lapped: a partial promotion would break
            // well-nestedness, so drop the whole query and say so.
            inner.dropped_slow.fetch_add(1, Ordering::Relaxed);
            self.emit(
                RecordKind::Event,
                Sym::intern_static("trace.slow_query_dropped"),
                sim_s,
                0,
                0,
                0,
                &[("dur_s", Field::F64(dur))],
            );
            return;
        }
        for claim in from..to {
            if let Some(rec) = side.read(claim) {
                self.sink_main(&rec);
            }
        }
    }

    /// Snapshot of retained records (ring sinks and the JSONL mirror),
    /// ordered by `seq`.
    pub fn records(&self) -> Vec<TraceRecord> {
        let Some(ring) = &self.inner.ring else {
            return Vec::new();
        };
        let head = ring.head();
        let oldest = head.saturating_sub(ring.capacity());
        let mut out: Vec<TraceRecord> = (oldest..head)
            .filter_map(|c| ring.read(c))
            .map(|r| r.to_record())
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Flush buffered output (JSONL).
    pub fn flush(&self) {
        drain_jsonl(&self.inner, true);
    }

    /// Depth of the open-span stack on this thread (tests, diagnostics).
    pub fn open_spans(&self) -> usize {
        with_stack(self.inner.bus_id, |st| st.frames.len())
    }
}

/// Handle returned by [`TraceBus::span`]; call [`SpanGuard::end`] with the
/// closing simulated timestamp.
#[must_use = "call .end(sim_now) to close the span"]
pub struct SpanGuard {
    bus: TraceBus,
    id: SpanId,
}

impl SpanGuard {
    pub fn id(&self) -> SpanId {
        self.id
    }

    pub fn end(self, sim_s: f64) {
        self.bus.span_end(self.id, sim_s);
    }

    /// Record an event inside this span.
    pub fn event(&self, name: &'static str, sim_s: f64, fields: &[(&'static str, Field)]) {
        self.bus.event(name, sim_s, fields);
    }
}

/// Check that `records` form a well-nested forest: every `SpanEnd` matches
/// the most recently opened unclosed span, and events reference an open
/// (or no) span. Returns the maximum depth seen.
pub fn check_well_nested(records: &[TraceRecord]) -> Result<usize, String> {
    let mut stack: Vec<SpanId> = Vec::new();
    let mut max_depth = 0;
    for rec in records {
        match rec.kind {
            RecordKind::SpanStart => {
                if rec.parent != stack.last().copied() {
                    return Err(format!(
                        "span {} ({}) has parent {:?}, expected {:?}",
                        rec.span,
                        rec.name,
                        rec.parent,
                        stack.last()
                    ));
                }
                stack.push(rec.span);
                max_depth = max_depth.max(stack.len());
            }
            RecordKind::SpanEnd => match stack.pop() {
                Some(top) if top == rec.span => {}
                other => {
                    return Err(format!(
                        "span_end {} ({}) does not match innermost open span {:?}",
                        rec.span, rec.name, other
                    ));
                }
            },
            RecordKind::Event => {
                if rec.parent != stack.last().copied() {
                    return Err(format!(
                        "event {} has parent {:?}, expected {:?}",
                        rec.name,
                        rec.parent,
                        stack.last()
                    ));
                }
            }
            // Links are causal edges across threads/sessions; they carry
            // no nesting semantics and may reference spans opened (and
            // even closed) anywhere in the trace.
            RecordKind::Link => {}
        }
    }
    Ok(max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_bus_is_inert() {
        let bus = TraceBus::noop();
        let id = bus.span_start("x", 0.0, &[]);
        assert_eq!(id, 0);
        bus.event("e", 0.0, &[]);
        bus.span_end(id, 1.0);
        assert!(bus.records().is_empty());
    }

    #[test]
    fn spans_nest_and_events_attach() {
        let bus = TraceBus::ring(64);
        let q = bus.span_start("query", 0.0, &[]);
        let f = bus.span_start("st_fetch", 1.0, &[("st", Field::U64(7))]);
        bus.event("tape.mount", 2.0, &[("medium", Field::U64(3))]);
        bus.span_end(f, 3.0);
        bus.span_end(q, 4.0);
        let recs = bus.records();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[1].parent, Some(q));
        assert_eq!(recs[2].parent, Some(f));
        check_well_nested(&recs).unwrap();
        assert_eq!(bus.open_spans(), 0);
    }

    #[test]
    fn early_return_spans_are_autoclosed() {
        let bus = TraceBus::ring(64);
        let outer = bus.span_start("outer", 0.0, &[]);
        let _leaked = bus.span_start("leaked", 1.0, &[]);
        // Closing the outer span force-closes the leaked inner one first.
        bus.span_end(outer, 5.0);
        let recs = bus.records();
        check_well_nested(&recs).unwrap();
        assert_eq!(bus.open_spans(), 0);
    }

    #[test]
    fn ring_capacity_is_bounded() {
        let bus = TraceBus::ring(4);
        for i in 0..10 {
            bus.event("e", i as f64, &[]);
        }
        let recs = bus.records();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].seq, 6);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("heaven_obs_test_{}.jsonl", std::process::id()));
        let bus = TraceBus::jsonl(&path).unwrap();
        let s = bus.span_start("query", 0.5, &[("oid", Field::U64(1))]);
        bus.event("tape.locate", 1.25, &[("cost_s", Field::F64(0.75))]);
        bus.span_end(s, 2.0);
        bus.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"span_start\""));
        assert!(lines[0].contains("\"sim_s\":0.5"));
        assert!(lines[1].contains("\"cost_s\":0.75"));
        assert!(lines[2].contains("\"dur_s\":1.5"));
        // the in-memory mirror still answers records()
        assert_eq!(bus.records().len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        let path =
            std::env::temp_dir().join(format!("heaven_obs_drop_{}.jsonl", std::process::id()));
        let bus = TraceBus::jsonl(&path).unwrap();
        let s = bus.span_start("query", 0.0, &[]);
        bus.event("tape.mount", 1.0, &[("medium", Field::U64(1))]);
        bus.span_end(s, 2.0);
        drop(bus); // no explicit flush
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3, "drop drains the pending ring");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_serialization_matches_reconstructed_records() {
        let bus = TraceBus::ring(64);
        let s = bus.span_start(
            "heaven.st_fetch",
            0.25,
            &[
                ("st", Field::U64(7)),
                ("neg", Field::I64(-3)),
                ("label", Field::dyn_str("warm fetch")),
                ("policy", Field::StaticStr("estar")),
            ],
        );
        bus.span_end(s, 1.0);
        for rec in bus.records() {
            // Round-trip through the compact form preserves the JSON the
            // old Vec-based records produced.
            let mut direct = String::new();
            // records() reconstructs; re-serialize and compare shape.
            direct.push_str(&rec.to_json());
            assert!(
                direct.contains("\"label\":\"warm fetch\"") || rec.kind != RecordKind::SpanStart
            );
            assert!(direct.starts_with('{') && direct.ends_with('}'));
        }
        let recs = bus.records();
        assert_eq!(recs[0].fields.len(), 4);
        assert_eq!(
            recs[0].fields[2],
            ("label", Field::Str("warm fetch".into()))
        );
    }

    #[test]
    fn head_sampling_keeps_every_nth_query() {
        let bus = TraceBus::from_config(&TraceConfig::ring(1 << 12).with_sample(3));
        for i in 0..9 {
            let q = bus.query_span_start("query", i as f64, &[]);
            bus.event("tape.mount", i as f64 + 0.1, &[]);
            bus.query_span_end(q, i as f64 + 0.5);
        }
        let recs = bus.records();
        check_well_nested(&recs).unwrap();
        let queries = recs
            .iter()
            .filter(|r| r.kind == RecordKind::SpanStart && r.name == "query")
            .count();
        assert_eq!(queries, 3, "1-in-3 sampling keeps 3 of 9 queries");
        // The sampling rate is announced in-band.
        assert!(recs
            .iter()
            .any(|r| r.name == "trace.config"
                && r.fields.contains(&("sample_1_in_n", Field::U64(3)))));
    }

    #[test]
    fn slow_sampled_out_queries_are_kept() {
        let cfg = TraceConfig::ring(1 << 12)
            .with_sample(1000)
            .with_keep_slow(5.0);
        let bus = TraceBus::from_config(&cfg);
        // Query 0 is head-sampled in; 1 is fast (dropped); 2 is slow (kept).
        let q = bus.query_span_start("query", 0.0, &[]);
        bus.query_span_end(q, 0.1);
        let q = bus.query_span_start("query", 1.0, &[]);
        bus.query_span_end(q, 1.1);
        let q = bus.query_span_start("query", 2.0, &[("slow", Field::U64(1))]);
        bus.event("tape.mount", 4.0, &[]);
        bus.query_span_end(q, 9.0);
        let recs = bus.records();
        check_well_nested(&recs).unwrap();
        let queries: Vec<_> = recs
            .iter()
            .filter(|r| r.kind == RecordKind::SpanStart && r.name == "query")
            .collect();
        assert_eq!(queries.len(), 2, "head-kept + slow-kept");
        assert!(queries
            .iter()
            .any(|r| r.fields.contains(&("slow", Field::U64(1)))));
        assert!(
            recs.iter()
                .any(|r| r.name == "tape.mount" && r.parent.is_some()),
            "promoted slow query keeps its events"
        );
    }

    #[test]
    fn subsystem_levels_filter_records() {
        let cfg = TraceConfig::ring(256)
            .with_level(Subsystem::Tape, TraceLevel::Off)
            .with_level(Subsystem::Hsm, TraceLevel::Spans);
        let bus = TraceBus::from_config(&cfg);
        let q = bus.span_start("query", 0.0, &[]);
        let t = bus.span_start("tape.transfer", 0.1, &[]); // dropped (Off)
        bus.event("tape.mount", 0.2, &[]); // dropped (Off)
        bus.span_end(t, 0.3);
        let h = bus.span_start("hsm.stage", 0.4, &[]); // kept (Spans)
        bus.event("hsm.purge", 0.5, &[]); // dropped (Spans < All)
        bus.span_end(h, 0.6);
        bus.span_end(q, 1.0);
        let recs = bus.records();
        check_well_nested(&recs).unwrap();
        let names: Vec<&str> = recs.iter().map(|r| r.name).collect();
        assert!(!names.contains(&"tape.transfer"));
        assert!(!names.contains(&"tape.mount"));
        assert!(!names.contains(&"hsm.purge"));
        assert!(names.contains(&"hsm.stage"));
        // The hsm span still nests under the query.
        let hsm = recs
            .iter()
            .find(|r| r.name == "hsm.stage" && r.kind == RecordKind::SpanStart)
            .unwrap();
        assert_eq!(hsm.parent, Some(q));
    }

    #[test]
    fn record_json_escapes_fields() {
        let rec = TraceRecord {
            seq: 1,
            kind: RecordKind::Event,
            name: "e",
            sim_s: 0.0,
            wall_unix_s: 0.0,
            span: 0,
            parent: None,
            session: None,
            fields: vec![("msg", Field::Str("a\"b".into()))],
        };
        assert!(rec.to_json().contains(r#""msg":"a\"b""#));
    }

    #[test]
    fn links_and_sessions_round_trip() {
        let bus = TraceBus::ring(64);
        bus.set_session(7);
        let q = bus.span_start("query", 0.0, &[]);
        let f = bus.span_start("heaven.st_fetch", 0.5, &[]);
        bus.link("sched.link", 1.0, f, 999, &[("coalesced", Field::U64(1))]);
        bus.span_end(f, 2.0);
        bus.span_end(q, 3.0);
        bus.set_session(0);
        bus.event("e", 4.0, &[]);
        let recs = bus.records();
        check_well_nested(&recs).unwrap();
        let link = recs.iter().find(|r| r.kind == RecordKind::Link).unwrap();
        assert_eq!(link.name, "sched.link");
        assert_eq!(link.span, f);
        assert_eq!(link.parent, Some(999));
        assert_eq!(link.session, Some(7));
        assert!(link.to_json().contains("\"kind\":\"link\""));
        assert!(link.to_json().contains("\"session\":7"));
        // Every record inside the session carries it; the cleared-session
        // event does not.
        assert!(recs
            .iter()
            .filter(|r| r.name != "e")
            .all(|r| r.session == Some(7)));
        assert_eq!(recs.iter().find(|r| r.name == "e").unwrap().session, None);
        // Links with a zero endpoint are dropped, not emitted.
        bus.link("sched.link", 5.0, 0, 999, &[]);
        assert!(!bus.records().iter().any(|r| r.sim_s == 5.0));
    }

    #[test]
    fn inline_and_escaped_strings_survive_the_compact_form() {
        let bus = TraceBus::ring(16);
        bus.event("e", 0.0, &[("msg", Field::dyn_str("a\"b\\c"))]);
        let recs = bus.records();
        assert_eq!(recs[0].fields[0].1, Field::Str("a\"b\\c".into()));
        assert!(recs[0].to_json().contains(r#""msg":"a\"b\\c""#));
    }
}
