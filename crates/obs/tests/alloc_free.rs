//! The allocation guarantee (ISSUE 6): once names are interned and the
//! thread-local span stack exists, `span_start` / `event` / `span_end`
//! on the ring path perform **zero heap allocations**.
//!
//! This file holds exactly one test: the counting global allocator sees
//! every allocation in the process, so parallel tests in the same binary
//! would pollute the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use heaven_obs::{Field, TraceBus};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// One representative warm-query record mix: a query span with a dynamic
/// label, a nested fetch span with a coalescing link, and a six-field
/// tape event (the widest instrumentation site in the tree).
fn run_queries(bus: &TraceBus, rounds: u64) {
    for i in 0..rounds {
        let t = i as f64;
        bus.set_session(1 + (i & 7));
        let q = bus.span_start("query", t, &[("label", Field::dyn_str("bench warm query"))]);
        let f = bus.span_start(
            "heaven.st_fetch",
            t + 0.1,
            &[("st", Field::U64(i)), ("bytes", Field::U64(1 << 16))],
        );
        bus.link(
            "sched.link",
            t + 0.15,
            f,
            q,
            &[("st", Field::U64(i)), ("coalesced", Field::U64(i & 1))],
        );
        bus.event(
            "tape.transfer",
            t + 0.2,
            &[
                ("medium", Field::U64(1)),
                ("drive", Field::U64(0)),
                ("offset", Field::U64(i * 4096)),
                ("bytes", Field::U64(4096)),
                ("dir", Field::StaticStr("read")),
                ("cost_s", Field::F64(0.01)),
            ],
        );
        bus.span_end(f, t + 0.5);
        bus.span_end(q, t + 0.6);
    }
}

#[test]
fn ring_fast_path_is_allocation_free() {
    let bus = TraceBus::ring(1 << 12);
    // Warm-up: intern the names, build this thread's span stack, lap the
    // ring once so no first-touch effects remain.
    run_queries(&bus, 1024);

    let before = ALLOCS.load(Ordering::Relaxed);
    run_queries(&bus, 256);
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "ring-path span_start/link/event/span_end must not allocate \
         ({} allocations across 256 warm queries)",
        after - before
    );

    // The records really landed (ring keeps the most recent 4096).
    let recs = bus.records();
    assert_eq!(recs.len(), 4096);
    assert!(recs.iter().any(|r| r.name == "tape.transfer"));
    // Link records made it through with their session stamp intact.
    assert!(recs
        .iter()
        .any(|r| r.kind == heaven_obs::RecordKind::Link && r.session.is_some()));
}
