//! Property-based tests of the log-bucketed histogram: quantile bounds,
//! quantile monotonicity, and lossless merging.

use heaven_obs::{bucket_index, bucket_upper_bound, HistSnapshot, NUM_BUCKETS};
use proptest::prelude::*;

fn observations() -> impl Strategy<Value = Vec<f64>> {
    // Durations spanning the interesting range: microseconds to days.
    prop::collection::vec(
        prop_oneof![1e-6..1.0f64, 1.0..100.0f64, 100.0..1e5f64, Just(0.0),],
        1..64,
    )
}

proptest! {
    #[test]
    fn quantiles_lie_within_min_max(values in observations(), q in 0.0..=1.0f64) {
        let mut h = HistSnapshot::default();
        for &v in &values {
            h.observe(v);
        }
        let est = h.quantile(q);
        prop_assert!(est >= h.min, "q{q}: {est} < min {}", h.min);
        prop_assert!(est <= h.max, "q{q}: {est} > max {}", h.max);
    }

    #[test]
    fn quantile_is_monotone_in_q(values in observations(), qa in 0.0..=1.0f64, qb in 0.0..=1.0f64) {
        let mut h = HistSnapshot::default();
        for &v in &values {
            h.observe(v);
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
    }

    #[test]
    fn merge_equals_concatenated_observation(a in observations(), b in observations()) {
        let mut ha = HistSnapshot::default();
        for &v in &a {
            ha.observe(v);
        }
        let mut hb = HistSnapshot::default();
        for &v in &b {
            hb.observe(v);
        }
        let mut merged = ha.clone();
        merged.merge(&hb);
        let mut concat = HistSnapshot::default();
        for &v in a.iter().chain(&b) {
            concat.observe(v);
        }
        prop_assert_eq!(merged.count, concat.count);
        prop_assert_eq!(merged.min, concat.min);
        prop_assert_eq!(merged.max, concat.max);
        prop_assert!((merged.sum - concat.sum).abs() <= 1e-9 * concat.sum.abs().max(1.0));
        prop_assert_eq!(&merged.counts, &concat.counts, "bucket-wise merge must be lossless");
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), concat.quantile(q));
        }
    }

    #[test]
    fn bucket_index_respects_bounds(v in 1e-10..1e13f64) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(v <= bucket_upper_bound(i), "{v} above bucket {i} upper bound");
        if i > 0 {
            prop_assert!(
                v > bucket_upper_bound(i - 1),
                "{v} not above bucket {}'s upper bound {}",
                i - 1,
                bucket_upper_bound(i - 1)
            );
        }
    }
}
