//! Conformance tests for the Prometheus/OpenMetrics text exposition:
//! label-value escaping, cumulative-bucket monotonicity, the mandatory
//! `+Inf` bucket equalling `_count`, and exemplar suffix syntax.

use heaven_obs::{escape_label_value, MetricsRegistry};

/// Strip an exemplar suffix (` # {...} v`) from a sample line, returning
/// the bare sample and the suffix (if any).
fn split_exemplar(line: &str) -> (&str, Option<&str>) {
    match line.split_once(" # ") {
        Some((sample, ex)) => (sample, Some(ex)),
        None => (line, None),
    }
}

#[test]
fn label_values_escape_backslash_quote_newline() {
    assert_eq!(escape_label_value("plain"), "plain");
    assert_eq!(escape_label_value(r#"a\b"#), r#"a\\b"#);
    assert_eq!(escape_label_value(r#"say "hi""#), r#"say \"hi\""#);
    assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
    assert_eq!(
        escape_label_value("\\\"\n"),
        "\\\\\\\"\\n",
        "all three escapes compose"
    );
}

#[test]
fn buckets_are_cumulative_and_inf_equals_count() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("heaven.query_latency_s");
    for v in [0.001, 0.05, 0.05, 1.0, 30.0, 3000.0] {
        h.observe(v);
    }
    let text = reg.render_prometheus();
    let mut last = 0u64;
    let mut inf = None;
    let mut count = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("heaven_query_latency_s_bucket") {
            let (sample, _) = split_exemplar(rest);
            let v: u64 = sample.split_whitespace().last().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be non-decreasing: {line}");
            last = v;
            if sample.starts_with("{le=\"+Inf\"}") {
                inf = Some(v);
            }
        } else if let Some(rest) = line.strip_prefix("heaven_query_latency_s_count ") {
            count = Some(rest.parse::<u64>().unwrap());
        }
    }
    assert_eq!(inf, Some(6), "+Inf bucket must close out every sample");
    assert_eq!(inf, count, "+Inf bucket must equal _count");
}

#[test]
fn exemplar_suffix_is_openmetrics_shaped() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("heaven.query_latency_s");
    h.observe(0.25); // no exemplar on this bucket
    h.observe_with_exemplar(4.5, 0xDEAD, 0xBEEF);
    let text = reg.render_prometheus();
    let with_ex: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("heaven_query_latency_s_bucket") && l.contains(" # "))
        .collect();
    assert_eq!(with_ex.len(), 1, "exactly one bucket carries it: {text}");
    let (sample, suffix) = split_exemplar(with_ex[0]);
    let suffix = suffix.unwrap();
    // `# {trace_id="…",span_id="…"} value` with decimal ids.
    assert_eq!(
        suffix,
        format!(
            "{{trace_id=\"{}\",span_id=\"{}\"}} 4.5",
            0xDEADu64, 0xBEEFu64
        ),
        "{text}"
    );
    // The exemplar rides the bucket that the observation landed in: its
    // value must not exceed the bucket's upper bound.
    let le: f64 = sample
        .split("le=\"")
        .nth(1)
        .unwrap()
        .split('"')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(4.5 <= le, "exemplar value 4.5 beyond bucket bound {le}");
    // A (0, 0) exemplar is "no trace context" and must not be emitted.
    let reg2 = MetricsRegistry::new();
    let h2 = reg2.histogram("heaven.query_latency_s");
    h2.observe_with_exemplar(1.0, 0, 0);
    assert!(!reg2.render_prometheus().contains(" # "));
}

#[test]
fn last_observation_wins_within_a_bucket() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("heaven.query_latency_s");
    // Both land in the same log bucket (strictly inside [2^0, 2^0.25));
    // the later exemplar replaces the earlier so operators always jump
    // to a recent trace.
    assert_eq!(
        heaven_obs::bucket_index(1.05),
        heaven_obs::bucket_index(1.10)
    );
    h.observe_with_exemplar(1.05, 11, 11);
    h.observe_with_exemplar(1.10, 22, 22);
    let text = reg.render_prometheus();
    assert!(text.contains("trace_id=\"22\""), "{text}");
    assert!(!text.contains("trace_id=\"11\""), "{text}");
}

#[test]
fn merged_snapshots_carry_exemplars() {
    let reg_a = MetricsRegistry::new();
    let reg_b = MetricsRegistry::new();
    reg_a
        .histogram("heaven.query_latency_s")
        .observe_with_exemplar(2.0, 7, 7);
    reg_b.histogram("heaven.query_latency_s").observe(2.0);
    let mut snap = reg_b.histogram("heaven.query_latency_s").snapshot();
    snap.merge(&reg_a.histogram("heaven.query_latency_s").snapshot());
    let idx = heaven_obs::bucket_index(2.0);
    let ex = snap.exemplar(idx).expect("merge keeps the exemplar");
    assert_eq!((ex.trace, ex.span), (7, 7));
    assert_eq!(snap.count, 2);
}
