//! Synthetic multidimensional test data (paper §4.2).
//!
//! The evaluation's data came from the ESTEDI partners: DKRZ climate
//! simulations (3-D/4-D temperature fields with seasonal periodicity,
//! Fig. 1.2) and DLR satellite rasters (vegetation-index imagery). These
//! generators reproduce the *statistical shape* of that data — smooth
//! spatial gradients, periodic time dimension, correlated noise — which is
//! what tiling and clustering behaviour depends on; absolute values are
//! irrelevant to storage-access cost.

use heaven_array::{CellType, MDArray, Minterval, Point};

/// Deterministic value noise from integer coordinates (splitmix-style).
fn hash_noise(seed: u64, coords: &[i64]) -> f64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &c in coords {
        h ^= (c as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = h.rotate_left(31).wrapping_mul(0x94D0_49BB_1331_11EB);
    }
    // map to [0, 1)
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Temperature (Kelvin) at a point, normalized against a *global* domain.
fn climate_value(global: &Minterval, p: &Point, seed: u64) -> f64 {
    let d = global.dim();
    let (time, lat_axis, alt) = match d {
        2 => (0.0, 0, None),
        3 => (p.coord(0) as f64, 1, None),
        _ => (p.coord(0) as f64, 1, Some(p.coord(3) as f64)),
    };
    let lat_extent = global.axis(lat_axis).extent() as f64;
    let lat_frac = (p.coord(lat_axis) - global.axis(lat_axis).lo) as f64 / lat_extent.max(1.0);
    // 303 K at the "equator" (middle), colder toward both poles
    let equator_dist = (lat_frac - 0.5).abs() * 2.0;
    let base = 303.0 - 45.0 * equator_dist;
    let season = 8.0 * (2.0 * std::f64::consts::PI * time / 12.0).sin();
    let lapse = alt.map(|a| -6.5 * a / 10.0).unwrap_or(0.0);
    let noise = 2.0 * (hash_noise(seed, &p.0) - 0.5);
    base + season + lapse + noise
}

/// A climate temperature field in Kelvin.
///
/// Dimensions are interpreted as `(time, latitude, longitude[, altitude])`
/// when 3-D/4-D, `(latitude, longitude)` when 2-D:
/// equator-to-pole gradient on the latitude axis, seasonal sinusoid on the
/// time axis, altitude lapse rate, plus correlated noise.
pub fn climate_field(domain: Minterval, seed: u64) -> MDArray {
    let global = domain.clone();
    MDArray::generate(domain, CellType::F32, move |p: &Point| {
        climate_value(&global, p, seed)
    })
}

/// One tile of a climate field: values are identical to the corresponding
/// cells of `climate_field(global, seed)`, so tiles can be produced in a
/// streamed insert without materializing the whole field.
pub fn climate_field_tile(global: &Minterval, tile: &Minterval, seed: u64) -> MDArray {
    let global = global.clone();
    MDArray::generate(tile.clone(), CellType::F32, move |p: &Point| {
        climate_value(&global, p, seed)
    })
}

/// A satellite vegetation-index raster (`octet` cells, 0–255).
///
/// Smooth multi-octave value noise: spatially correlated like real NDVI
/// scenes, so neighbouring tiles compress/cluster like real imagery.
pub fn satellite_image(domain: Minterval, seed: u64) -> MDArray {
    MDArray::generate(domain, CellType::U8, |p: &Point| {
        let mut v = 0.0;
        let mut weight = 0.0;
        for octave in 0..3u32 {
            let cell = 1i64 << (6 - 2 * octave as i64).max(0);
            let coarse: Vec<i64> = p.0.iter().map(|&c| c.div_euclid(cell)).collect();
            let w = 1.0 / (1 << octave) as f64;
            v += w * hash_noise(seed + octave as u64, &coarse);
            weight += w;
        }
        (v / weight) * 255.0
    })
}

/// A computational-fluid-dynamics-style field (`double` cells): a sum of
/// smooth sinusoidal modes, mimicking turbulence-simulation output.
pub fn cfd_field(domain: Minterval, seed: u64) -> MDArray {
    let modes: Vec<(f64, Vec<f64>)> = (0..5)
        .map(|m| {
            let amp = 1.0 / (m + 1) as f64;
            let freqs: Vec<f64> = (0..domain.dim())
                .map(|a| {
                    0.02 + 0.1 * hash_noise(seed + m as u64 * 17 + a as u64, &[m as i64, a as i64])
                })
                .collect();
            (amp, freqs)
        })
        .collect();
    MDArray::generate(domain, CellType::F64, |p: &Point| {
        modes
            .iter()
            .map(|(amp, freqs)| {
                let phase: f64 = p.0.iter().zip(freqs).map(|(&c, f)| c as f64 * f).sum();
                amp * phase.sin()
            })
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    #[test]
    fn climate_is_deterministic_per_seed() {
        let a = climate_field(mi(&[(0, 11), (0, 19), (0, 9)]), 42);
        let b = climate_field(mi(&[(0, 11), (0, 19), (0, 9)]), 42);
        let c = climate_field(mi(&[(0, 11), (0, 19), (0, 9)]), 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn climate_values_are_physical() {
        let f = climate_field(mi(&[(0, 11), (0, 39), (0, 39)]), 1);
        for (_, v) in f.iter_cells() {
            let k = v.as_f64();
            assert!((200.0..330.0).contains(&k), "temperature {k} K");
        }
    }

    #[test]
    fn climate_equator_warmer_than_pole() {
        let f = climate_field(mi(&[(0, 0), (0, 99), (0, 9)]), 7);
        let mut equator = 0.0;
        let mut pole = 0.0;
        for lon in 0..10 {
            equator += f.get_f64(&Point::new(vec![0, 50, lon])).unwrap();
            pole += f.get_f64(&Point::new(vec![0, 0, lon])).unwrap();
        }
        assert!(equator > pole + 100.0);
    }

    #[test]
    fn seasonal_cycle_visible_along_time() {
        let f = climate_field(mi(&[(0, 23), (0, 3), (0, 3)]), 9);
        // month 3 (peak of sin at t=3: sin(pi/2)=1) vs month 9 (trough)
        let p_summer = Point::new(vec![3, 2, 2]);
        let p_winter = Point::new(vec![9, 2, 2]);
        assert!(f.get_f64(&p_summer).unwrap() > f.get_f64(&p_winter).unwrap() + 5.0);
    }

    #[test]
    fn streamed_tiles_match_whole_field() {
        let global = mi(&[(0, 11), (0, 19), (0, 9)]);
        let whole = climate_field(global.clone(), 8);
        let tile_dom = mi(&[(3, 7), (5, 14), (0, 9)]);
        let tile = climate_field_tile(&global, &tile_dom, 8);
        for p in tile_dom.iter_points() {
            assert_eq!(tile.get_f64(&p).unwrap(), whole.get_f64(&p).unwrap());
        }
    }

    #[test]
    fn satellite_is_u8_and_correlated() {
        let img = satellite_image(mi(&[(0, 63), (0, 63)]), 3);
        assert_eq!(img.cell_type(), CellType::U8);
        // neighbouring cells correlate more than distant ones
        let mut near_diff = 0.0;
        let mut far_diff = 0.0;
        for i in 0..32 {
            let a = img.get_f64(&Point::new(vec![i, 10])).unwrap();
            let b = img.get_f64(&Point::new(vec![i, 11])).unwrap();
            let c = img.get_f64(&Point::new(vec![i, 60])).unwrap();
            near_diff += (a - b).abs();
            far_diff += (a - c).abs();
        }
        assert!(near_diff < far_diff);
    }

    #[test]
    fn cfd_field_is_smooth() {
        let f = cfd_field(mi(&[(0, 31), (0, 31)]), 5);
        let mut max_grad: f64 = 0.0;
        for i in 0..31 {
            let a = f.get_f64(&Point::new(vec![i, 16])).unwrap();
            let b = f.get_f64(&Point::new(vec![i + 1, 16])).unwrap();
            max_grad = max_grad.max((a - b).abs());
        }
        assert!(max_grad < 1.0, "adjacent cells differ smoothly");
    }
}
