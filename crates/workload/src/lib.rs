#![warn(missing_docs)]
//! # heaven-workload — test data and query workloads
//!
//! Reproduces the *shape* of the evaluation's inputs (paper §4.2): climate
//! fields, satellite rasters and CFD output as data; selectivity sweeps,
//! directional/slice access and hot-region locality as query streams. All
//! generators are seeded and deterministic.

pub mod data;
pub mod mixed;
pub mod queries;

pub use data::{cfd_field, climate_field, climate_field_tile, satellite_image};
pub use mixed::{adversarial_mix, MixedOp};
pub use queries::{
    directional_queries, framing_workloads, hot_region_queries, random_box, selectivity_queries,
    session_streams, slice_queries,
};
