//! Adversarial mixed ingest + query streams for chaos benchmarking.
//!
//! The clean workloads in [`crate::queries`] read one archived object with
//! a single access pattern. Fault-tolerance tails (p99/p99.9 under drive
//! failures and media errors) only show up when the archive is *churning*:
//! new objects keep arriving (each export appends to fresh tape regions
//! and steals drives) while queries alternate between the hot,
//! just-ingested object and cold objects deep in the archive (forcing
//! media exchanges right when a drive may be down). [`adversarial_mix`]
//! generates exactly that interleaving — seeded and deterministic, so a
//! faulty run and its clean twin execute the identical operation stream.

use heaven_array::Minterval;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One operation of a mixed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedOp {
    /// Ingest (generate + export) the next object; the driver assigns it
    /// the next object index.
    Ingest,
    /// Query a region of an already-ingested object (index into the
    /// ingest order: `0` is the oldest, higher is newer).
    Query {
        /// Which object to read, as an index into ingest order.
        object: usize,
        /// The region to read.
        region: Minterval,
    },
}

/// Generate an adversarial mixed stream of `ops` operations over objects
/// sharing `domain`.
///
/// `initial_objects` exist before the stream starts (index
/// `0..initial_objects`); every `ingest_every`-th operation ingests a new
/// object. Queries alternate between *hot* (the newest object — likely
/// staged, but its medium is the one exports are appending to) and *cold*
/// (uniformly random over the whole archive — likely a fresh mount).
/// Regions are `selectivity`-sized boxes from [`crate::random_box`].
/// Fully deterministic in `seed`.
pub fn adversarial_mix(
    domain: &Minterval,
    initial_objects: usize,
    ops: usize,
    ingest_every: usize,
    selectivity: f64,
    seed: u64,
) -> Vec<MixedOp> {
    assert!(initial_objects > 0, "need at least one queryable object");
    let mut rng = StdRng::seed_from_u64(seed);
    let ingest_every = ingest_every.max(1);
    let mut count = initial_objects;
    let mut out = Vec::with_capacity(ops);
    for i in 0..ops {
        if (i + 1) % ingest_every == 0 {
            out.push(MixedOp::Ingest);
            count += 1;
            continue;
        }
        let object = if rng.gen_bool(0.5) {
            count - 1 // hot: the newest object
        } else {
            rng.gen_range(0..count) // cold: anywhere in the archive
        };
        let region = crate::random_box(domain, selectivity, &mut rng);
        out.push(MixedOp::Query { object, region });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom() -> Minterval {
        Minterval::new(&[(0, 255), (0, 255)]).unwrap()
    }

    #[test]
    fn same_seed_same_stream() {
        let a = adversarial_mix(&dom(), 2, 200, 10, 0.01, 42);
        let b = adversarial_mix(&dom(), 2, 200, 10, 0.01, 42);
        assert_eq!(a, b);
        let c = adversarial_mix(&dom(), 2, 200, 10, 0.01, 43);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn ingest_cadence_and_query_targets_are_valid() {
        let ops = adversarial_mix(&dom(), 3, 100, 7, 0.02, 1);
        assert_eq!(ops.len(), 100);
        let mut count = 3usize;
        let mut ingests = 0usize;
        for (i, op) in ops.iter().enumerate() {
            match op {
                MixedOp::Ingest => {
                    assert_eq!((i + 1) % 7, 0, "ingests land on the cadence");
                    count += 1;
                    ingests += 1;
                }
                MixedOp::Query { object, region } => {
                    assert!(*object < count, "query target must exist");
                    assert!(dom().contains(region), "region inside the domain");
                }
            }
        }
        assert_eq!(ingests, 100 / 7);
    }

    #[test]
    fn queries_mix_hot_and_cold() {
        let ops = adversarial_mix(&dom(), 8, 400, 1000, 0.01, 5);
        let (mut hot, mut cold) = (0usize, 0usize);
        for op in &ops {
            if let MixedOp::Query { object, .. } = op {
                if *object == 7 {
                    hot += 1;
                } else {
                    cold += 1;
                }
            }
        }
        assert!(hot > 100, "newest object must dominate ({hot} hot)");
        assert!(cold > 50, "cold archive reads must occur ({cold} cold)");
    }
}
