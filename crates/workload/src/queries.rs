//! Query-workload generators for the evaluation.
//!
//! The retrieval experiments need reproducible query streams with
//! controlled *selectivity* (fraction of the object a query needs — the
//! paper stresses users need only 1–10 %, §1.1), *shape* (cubic,
//! directional, slices) and *locality* (hot regions, for the caching
//! experiment).

use heaven_array::{Frame, Interval, Minterval};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random axis-aligned box inside `domain` covering approximately
/// `selectivity` (0..=1] of its cells, with near-equal relative extent on
/// every axis.
pub fn random_box(domain: &Minterval, selectivity: f64, rng: &mut StdRng) -> Minterval {
    let d = domain.dim();
    let frac = selectivity.clamp(1e-9, 1.0).powf(1.0 / d as f64);
    let axes: Vec<Interval> = (0..d)
        .map(|i| {
            let ext = domain.axis(i).extent();
            let len = ((ext as f64 * frac).round() as u64).clamp(1, ext);
            let slack = ext - len;
            let start = if slack == 0 {
                0
            } else {
                rng.gen_range(0..=slack)
            };
            let lo = domain.axis(i).lo + start as i64;
            Interval::new(lo, lo + len as i64 - 1).expect("len >= 1")
        })
        .collect();
    Minterval::from_intervals(axes)
}

/// `n` random boxes of the given selectivity.
pub fn selectivity_queries(
    domain: &Minterval,
    selectivity: f64,
    n: usize,
    seed: u64,
) -> Vec<Minterval> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| random_box(domain, selectivity, &mut rng))
        .collect()
}

/// Directional queries: thin boxes spanning the full `axis` extent,
/// covering `selectivity` of the object.
pub fn directional_queries(
    domain: &Minterval,
    axis: usize,
    selectivity: f64,
    n: usize,
    seed: u64,
) -> Vec<Minterval> {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = domain.dim();
    // the full axis already contributes extent 1.0; split the rest evenly
    let rest_frac = selectivity.clamp(1e-9, 1.0).powf(1.0 / (d as f64 - 1.0));
    (0..n)
        .map(|_| {
            let axes: Vec<Interval> = (0..d)
                .map(|i| {
                    if i == axis {
                        domain.axis(i)
                    } else {
                        let ext = domain.axis(i).extent();
                        let len = ((ext as f64 * rest_frac).round() as u64).clamp(1, ext);
                        let start = if ext == len {
                            0
                        } else {
                            rng.gen_range(0..=(ext - len))
                        };
                        let lo = domain.axis(i).lo + start as i64;
                        Interval::new(lo, lo + len as i64 - 1).expect("len >= 1")
                    }
                })
                .collect();
            Minterval::from_intervals(axes)
        })
        .collect()
}

/// Slice queries: fix `axis` to random positions, full extent elsewhere.
pub fn slice_queries(domain: &Minterval, axis: usize, n: usize, seed: u64) -> Vec<Minterval> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let axes: Vec<Interval> = (0..domain.dim())
                .map(|i| {
                    if i == axis {
                        let pos = rng.gen_range(domain.axis(i).lo..=domain.axis(i).hi);
                        Interval::new(pos, pos).expect("point interval")
                    } else {
                        domain.axis(i)
                    }
                })
                .collect();
            Minterval::from_intervals(axes)
        })
        .collect()
}

/// A hot-region workload: `n` queries of the given selectivity, a fraction
/// `hot_fraction` of which land inside one small hot region (temporal +
/// spatial locality for the caching experiment); the rest are uniform.
pub fn hot_region_queries(
    domain: &Minterval,
    selectivity: f64,
    n: usize,
    hot_fraction: f64,
    seed: u64,
) -> Vec<Minterval> {
    let mut rng = StdRng::seed_from_u64(seed);
    // hot region: a fixed box covering ~20 % of the domain
    let hot = random_box(domain, 0.2, &mut rng);
    (0..n)
        .map(|_| {
            if rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) {
                random_box(&hot, selectivity / 0.2, &mut rng)
            } else {
                random_box(domain, selectivity, &mut rng)
            }
        })
        .collect()
}

/// The framing workloads of experiment E9: `(name, frame, selectivity of
/// the frame itself)` triples over a domain.
pub fn framing_workloads(domain: &Minterval) -> Vec<(&'static str, Frame)> {
    let d = domain.dim();
    assert!(d >= 2, "framing workloads need >= 2 dimensions");
    let ext: Vec<i64> = domain.shape().iter().map(|&e| e as i64).collect();
    let lo = domain.lo();
    let hi = domain.hi();
    let box_of = |fracs: &[(f64, f64)]| -> Minterval {
        let axes: Vec<Interval> = (0..d)
            .map(|i| {
                let (a, b) = fracs.get(i).copied().unwrap_or((0.0, 1.0));
                let l = lo.coord(i) + (a * (ext[i] - 1) as f64) as i64;
                let h = lo.coord(i) + (b * (ext[i] - 1) as f64) as i64;
                Interval::new(l.min(h), h.max(l)).expect("ordered")
            })
            .collect();
        Minterval::from_intervals(axes)
    };
    let _ = hi;
    vec![
        (
            "l-shape",
            Frame::from_box(box_of(&[(0.0, 1.0), (0.0, 0.15)]))
                .union(&Frame::from_box(box_of(&[(0.85, 1.0), (0.0, 1.0)])))
                .expect("same dim"),
        ),
        (
            "shell",
            Frame::from_box(domain.clone())
                .difference(&Frame::from_box(box_of(&[(0.1, 0.9), (0.1, 0.9)])))
                .expect("same dim"),
        ),
        (
            "two-corners",
            Frame::from_box(box_of(&[(0.0, 0.2), (0.0, 0.2)]))
                .union(&Frame::from_box(box_of(&[(0.8, 1.0), (0.8, 1.0)])))
                .expect("same dim"),
        ),
    ]
}

/// Deal a query mix into `sessions` round-robin per-session streams for
/// multi-session execution: stream `i` gets queries `i, i+sessions, ...`,
/// so every stream sees the mix in global order and the streams are
/// disjoint and exhaustive. Streams for `sessions >= len` come back
/// empty rather than panicking.
pub fn session_streams<T: Clone>(queries: &[T], sessions: usize) -> Vec<Vec<T>> {
    let sessions = sessions.max(1);
    let mut streams = vec![Vec::with_capacity(queries.len().div_ceil(sessions)); sessions];
    for (i, q) in queries.iter().enumerate() {
        streams[i % sessions].push(q.clone());
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    #[test]
    fn session_streams_deal_round_robin() {
        let qs: Vec<u32> = (0..10).collect();
        let streams = session_streams(&qs, 4);
        assert_eq!(streams.len(), 4);
        assert_eq!(streams[0], [0, 4, 8]);
        assert_eq!(streams[1], [1, 5, 9]);
        assert_eq!(streams[2], [2, 6]);
        assert_eq!(streams[3], [3, 7]);
        assert_eq!(streams.iter().map(Vec::len).sum::<usize>(), 10);
        // Degenerate shapes stay total.
        assert_eq!(session_streams(&qs, 1).len(), 1);
        assert_eq!(session_streams(&qs, 32).len(), 32);
        assert_eq!(
            session_streams(&qs, 32).iter().flatten().count(),
            10,
            "oversubscribed deal loses nothing"
        );
    }

    #[test]
    fn random_box_matches_selectivity() {
        let dom = mi(&[(0, 999), (0, 999), (0, 99)]);
        let mut rng = StdRng::seed_from_u64(1);
        for &sel in &[0.001, 0.01, 0.1, 0.5] {
            let q = random_box(&dom, sel, &mut rng);
            assert!(dom.contains(&q));
            let actual = q.cell_count() as f64 / dom.cell_count() as f64;
            assert!(
                actual > sel / 4.0 && actual < sel * 4.0,
                "sel {sel} gave {actual}"
            );
        }
    }

    #[test]
    fn queries_are_reproducible() {
        let dom = mi(&[(0, 499), (0, 499)]);
        let a = selectivity_queries(&dom, 0.05, 10, 7);
        let b = selectivity_queries(&dom, 0.05, 10, 7);
        assert_eq!(a, b);
        let c = selectivity_queries(&dom, 0.05, 10, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn directional_queries_span_axis() {
        let dom = mi(&[(0, 99), (0, 99), (0, 99)]);
        for q in directional_queries(&dom, 2, 0.05, 5, 3) {
            assert_eq!(q.axis(2), dom.axis(2));
            assert!(dom.contains(&q));
            assert!(q.axis(0).extent() < 100);
        }
    }

    #[test]
    fn slice_queries_fix_axis() {
        let dom = mi(&[(0, 99), (0, 99)]);
        for q in slice_queries(&dom, 0, 8, 5) {
            assert_eq!(q.axis(0).extent(), 1);
            assert_eq!(q.axis(1), dom.axis(1));
        }
    }

    #[test]
    fn hot_workload_has_locality() {
        let dom = mi(&[(0, 999), (0, 999)]);
        let qs = hot_region_queries(&dom, 0.01, 200, 0.8, 11);
        assert_eq!(qs.len(), 200);
        // most queries overlap one another far more than uniform would
        let mut overlapping_pairs = 0;
        for i in 0..50 {
            for j in (i + 1)..50 {
                if qs[i].intersects(&qs[j]) {
                    overlapping_pairs += 1;
                }
            }
        }
        assert!(overlapping_pairs > 100, "only {overlapping_pairs} overlaps");
    }

    #[test]
    fn framing_workloads_are_valid() {
        let dom = mi(&[(0, 599), (0, 599)]);
        let ws = framing_workloads(&dom);
        assert_eq!(ws.len(), 3);
        for (name, f) in ws {
            assert!(f.check_disjoint(), "{name}");
            assert!(!f.is_empty(), "{name}");
            assert!(f.cell_count() < dom.cell_count(), "{name}");
            for b in f.boxes() {
                assert!(dom.contains(b), "{name}");
            }
        }
    }
}
