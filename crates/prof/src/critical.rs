//! Per-query critical-path attribution across sessions.
//!
//! Concurrent sessions share tertiary work: when several queries need
//! super-tiles from the same medium, one session's drain pass serves all
//! of them under a single `sched.batch` span, and every waiter records a
//! `sched.link` edge from its own `heaven.st_fetch` span to that shared
//! batch span. This module follows those edges to answer, per query:
//! *where did the time go, and whose fetch was I actually waiting on?*
//!
//! Decomposition per query span:
//!
//! - `fetch_s` — time inside `heaven.st_fetch` child spans (tertiary
//!   staging, including any wait on another session's in-flight fetch),
//! - `local_s` — the remainder (`total − fetch`, clamped at 0): cache
//!   hits, tile assembly, decode,
//! - `queue_s` / `service_s` — the batched-scheduler decomposition from
//!   the `sched.served` events nested in each fetch: time from enqueue to
//!   the serving drain pass vs. time being physically staged.
//!
//! By construction `local_s + fetch_s == total_s` (child spans are
//! nested and non-overlapping on the session's lane clock), so the
//! report attributes every query's latency exactly; the *dominant*
//! column names the largest of queue/service/local.

use crate::trace::{total_sim_s, ProfKind, ProfRecord};
use heaven_obs::json;
use std::collections::BTreeMap;

/// One causal edge: a query's fetch span → the shared batch span that
/// actually staged the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalLink {
    /// The waiter's `heaven.st_fetch` span.
    pub from: u64,
    /// The `sched.batch` span that served it.
    pub to: u64,
    /// Session of the drain pass that owned the batch (0 if the batch
    /// span is absent from the trace, e.g. ring overwrite).
    pub served_by: u64,
    /// 1 when the waiter coalesced onto a fetch another waiter had
    /// already registered (shared physical fetch).
    pub coalesced: bool,
}

/// Critical-path attribution for one query span.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCritical {
    pub span: u64,
    /// Session that ran the query (0 when unstamped).
    pub session: u64,
    pub start_s: f64,
    pub end_s: f64,
    pub total_s: f64,
    /// `total_s − fetch_s`, clamped at 0: cache/assembly/decode time.
    pub local_s: f64,
    /// Sum of `heaven.st_fetch` child span durations.
    pub fetch_s: f64,
    /// Sum of scheduler queue time over this query's fetches.
    pub queue_s: f64,
    /// Sum of scheduler service time over this query's fetches.
    pub service_s: f64,
    /// Tertiary fetches issued (cache hits don't open fetch spans).
    pub fetches: u64,
    /// How many of those rode another waiter's in-flight fetch.
    pub coalesced: u64,
    pub links: Vec<CriticalLink>,
    /// Largest of `queue` / `service` / `local`.
    pub dominant: &'static str,
}

fn dominant_of(queue_s: f64, service_s: f64, local_s: f64) -> &'static str {
    if queue_s >= service_s && queue_s >= local_s {
        "queue"
    } else if service_s >= local_s {
        "service"
    } else {
        "local"
    }
}

/// Build the per-query critical-path report from a parsed trace.
/// Queries are returned in span-id (creation) order.
pub fn critical_path(records: &[ProfRecord]) -> Vec<QueryCritical> {
    let end_of_trace = total_sim_s(records);
    // span id → (name, start, end, parent, session)
    struct Node {
        name: String,
        start_s: f64,
        end_s: Option<f64>,
        parent: Option<u64>,
        session: u64,
    }
    let mut spans: BTreeMap<u64, Node> = BTreeMap::new();
    // fetch span → (queue_s, service_s) from its nested sched.served
    let mut served: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    // fetch span → (batch span, coalesced)
    let mut links: BTreeMap<u64, (u64, bool)> = BTreeMap::new();
    for rec in records {
        match rec.kind {
            ProfKind::SpanStart => {
                spans.insert(
                    rec.span,
                    Node {
                        name: rec.name.clone(),
                        start_s: rec.sim_s,
                        end_s: None,
                        parent: rec.parent,
                        session: rec.session.unwrap_or(0),
                    },
                );
            }
            ProfKind::SpanEnd => {
                if let Some(n) = spans.get_mut(&rec.span) {
                    n.end_s = Some(rec.sim_s);
                }
            }
            ProfKind::Event if rec.name == "sched.served" => {
                if let Some(parent) = rec.parent {
                    let q = rec.field_f64("queue_s").unwrap_or(0.0);
                    let s = rec.field_f64("service_s").unwrap_or(0.0);
                    let e = served.entry(parent).or_insert((0.0, 0.0));
                    e.0 += q;
                    e.1 += s;
                }
            }
            ProfKind::Link if rec.name == "sched.link" => {
                if let Some(to) = rec.parent {
                    let coalesced = rec.field_u64("coalesced").unwrap_or(0) != 0;
                    links.insert(rec.span, (to, coalesced));
                }
            }
            _ => {}
        }
    }
    let dur = |n: &Node| (n.end_s.unwrap_or(end_of_trace) - n.start_s).max(0.0);
    let mut out = Vec::new();
    for (&qid, q) in spans.iter().filter(|(_, n)| n.name == "query") {
        let total_s = dur(q);
        let mut fetch_s = 0.0;
        let mut queue_s = 0.0;
        let mut service_s = 0.0;
        let mut fetches = 0u64;
        let mut coalesced = 0u64;
        let mut qlinks = Vec::new();
        for (&fid, f) in spans
            .iter()
            .filter(|(_, n)| n.parent == Some(qid) && n.name == "heaven.st_fetch")
        {
            fetches += 1;
            fetch_s += dur(f);
            if let Some(&(qs, ss)) = served.get(&fid) {
                queue_s += qs;
                service_s += ss;
            }
            if let Some(&(to, was_coalesced)) = links.get(&fid) {
                if was_coalesced {
                    coalesced += 1;
                }
                qlinks.push(CriticalLink {
                    from: fid,
                    to,
                    served_by: spans.get(&to).map_or(0, |b| b.session),
                    coalesced: was_coalesced,
                });
            }
        }
        let local_s = (total_s - fetch_s).max(0.0);
        out.push(QueryCritical {
            span: qid,
            session: q.session,
            start_s: q.start_s,
            end_s: q.end_s.unwrap_or(end_of_trace),
            total_s,
            local_s,
            fetch_s,
            queue_s,
            service_s,
            fetches,
            coalesced,
            links: qlinks,
            dominant: dominant_of(queue_s, service_s, local_s),
        });
    }
    out
}

/// Render the report as one JSON document (own-parser compatible).
pub fn to_json(queries: &[QueryCritical]) -> String {
    let mut out = String::from("{\"queries\":[");
    for (i, q) in queries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"span\":");
        out.push_str(&q.span.to_string());
        out.push_str(",\"session\":");
        out.push_str(&q.session.to_string());
        out.push_str(",\"start_s\":");
        json::write_f64(&mut out, q.start_s);
        out.push_str(",\"end_s\":");
        json::write_f64(&mut out, q.end_s);
        out.push_str(",\"total_s\":");
        json::write_f64(&mut out, q.total_s);
        out.push_str(",\"local_s\":");
        json::write_f64(&mut out, q.local_s);
        out.push_str(",\"fetch_s\":");
        json::write_f64(&mut out, q.fetch_s);
        out.push_str(",\"queue_s\":");
        json::write_f64(&mut out, q.queue_s);
        out.push_str(",\"service_s\":");
        json::write_f64(&mut out, q.service_s);
        out.push_str(",\"fetches\":");
        out.push_str(&q.fetches.to_string());
        out.push_str(",\"coalesced\":");
        out.push_str(&q.coalesced.to_string());
        out.push_str(",\"dominant\":");
        json::write_str(&mut out, q.dominant);
        out.push_str(",\"links\":[");
        for (j, l) in q.links.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"from\":");
            out.push_str(&l.from.to_string());
            out.push_str(",\"to\":");
            out.push_str(&l.to.to_string());
            out.push_str(",\"served_by\":");
            out.push_str(&l.served_by.to_string());
            out.push_str(",\"coalesced\":");
            out.push_str(if l.coalesced { "true" } else { "false" });
            out.push('}');
        }
        out.push_str("]}");
    }
    let links: usize = queries.iter().map(|q| q.links.len()).sum();
    let coalesced: u64 = queries.iter().map(|q| q.coalesced).sum();
    out.push_str("],\"totals\":{\"queries\":");
    out.push_str(&queries.len().to_string());
    out.push_str(",\"total_s\":");
    json::write_f64(&mut out, queries.iter().map(|q| q.total_s).sum());
    out.push_str(",\"queue_s\":");
    json::write_f64(&mut out, queries.iter().map(|q| q.queue_s).sum());
    out.push_str(",\"service_s\":");
    json::write_f64(&mut out, queries.iter().map(|q| q.service_s).sum());
    out.push_str(",\"local_s\":");
    json::write_f64(&mut out, queries.iter().map(|q| q.local_s).sum());
    out.push_str(",\"links\":");
    out.push_str(&links.to_string());
    out.push_str(",\"coalesced\":");
    out.push_str(&coalesced.to_string());
    out.push_str("}}");
    out
}

/// Render a human-readable table, one row per query.
pub fn render(queries: &[QueryCritical]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>10} {:>7} {:>10} {:>10} {:>10} {:>10} {:>7} {:>9}  {}\n",
        "span",
        "session",
        "total_s",
        "queue_s",
        "service_s",
        "local_s",
        "fetches",
        "coalesced",
        "dominant"
    ));
    for q in queries {
        out.push_str(&format!(
            "{:>10} {:>7} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>7} {:>9}  {}\n",
            q.span,
            q.session,
            q.total_s,
            q.queue_s,
            q.service_s,
            q.local_s,
            q.fetches,
            q.coalesced,
            q.dominant
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::load_trace;
    use heaven_obs::{Field, TraceBus};

    fn trace_text(bus: &TraceBus) -> String {
        bus.records().iter().map(|r| r.to_json() + "\n").collect()
    }

    /// Two sessions, one shared batch: session 2's fetch coalesces onto
    /// the batch driven from session 1. Attribution must be exact.
    #[test]
    fn attributes_latency_across_a_shared_batch() {
        let bus = TraceBus::ring(256);
        bus.set_session(1);
        let q1 = bus.span_start("query", 0.0, &[]);
        let f1 = bus.span_start("heaven.st_fetch", 1.0, &[("st", Field::U64(9))]);
        let b = bus.span_start("sched.batch", 1.5, &[("fetches", Field::U64(2))]);
        bus.span_end(b, 7.0);
        bus.link(
            "sched.link",
            7.0,
            f1,
            b,
            &[("st", Field::U64(9)), ("coalesced", Field::U64(0))],
        );
        bus.event(
            "sched.served",
            7.0,
            &[("queue_s", Field::F64(0.5)), ("service_s", Field::F64(5.5))],
        );
        bus.span_end(f1, 7.0);
        bus.span_end(q1, 8.0);
        // Second session: its whole fetch is a wait on session 1's batch.
        bus.set_session(2);
        let q2 = bus.span_start("query", 2.0, &[]);
        let f2 = bus.span_start("heaven.st_fetch", 2.5, &[("st", Field::U64(9))]);
        bus.link(
            "sched.link",
            7.0,
            f2,
            b,
            &[("st", Field::U64(9)), ("coalesced", Field::U64(1))],
        );
        bus.event(
            "sched.served",
            7.0,
            &[("queue_s", Field::F64(0.5)), ("service_s", Field::F64(5.5))],
        );
        bus.span_end(f2, 7.0);
        bus.span_end(q2, 7.25);
        let recs = load_trace(&trace_text(&bus)).unwrap();
        let report = critical_path(&recs);
        assert_eq!(report.len(), 2);
        let r1 = &report[0];
        assert_eq!((r1.session, r1.fetches, r1.coalesced), (1, 1, 0));
        assert!((r1.total_s - 8.0).abs() < 1e-9);
        assert!((r1.fetch_s - 6.0).abs() < 1e-9);
        assert!((r1.local_s - 2.0).abs() < 1e-9);
        assert!((r1.local_s + r1.fetch_s - r1.total_s).abs() < 1e-9);
        assert_eq!(r1.dominant, "service");
        let r2 = &report[1];
        assert_eq!((r2.session, r2.coalesced), (2, 1));
        assert_eq!(r2.links.len(), 1);
        // The link resolves to the batch span and the drainer's session.
        assert_eq!(r2.links[0].to, b);
        assert_eq!(r2.links[0].served_by, 1);
        assert!(r2.links[0].coalesced);
        assert!((r2.local_s + r2.fetch_s - r2.total_s).abs() < 1e-9);
        let js = to_json(&report);
        crate::json::parse(&js).unwrap();
        assert!(js.contains("\"served_by\":1"), "{js}");
        assert!(render(&report).contains("service"));
    }

    /// Cache-hit-only queries have no fetch spans: all time is local.
    #[test]
    fn pure_local_query_is_local_dominant() {
        let bus = TraceBus::ring(64);
        bus.set_session(4);
        let q = bus.span_start("query", 0.0, &[]);
        bus.span_end(q, 0.25);
        let recs = load_trace(&trace_text(&bus)).unwrap();
        let report = critical_path(&recs);
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].dominant, "local");
        assert_eq!(report[0].fetches, 0);
        assert!((report[0].local_s - 0.25).abs() < 1e-9);
    }
}
