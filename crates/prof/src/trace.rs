//! Loading a JSONL trace back into memory.
//!
//! Each line is one `heaven_obs::TraceRecord` rendered by `to_json()`.
//! The profiler keeps its own owned record type ([`ProfRecord`]) because
//! the bus's record borrows `&'static str` names, which a parser cannot
//! produce.

use crate::json::{self, Json};
use std::collections::BTreeMap;

/// Record kind, mirroring `heaven_obs::RecordKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfKind {
    SpanStart,
    SpanEnd,
    Event,
    /// A causal edge between two spans (`span` → `parent`), emitted when
    /// work is shared — e.g. a session's fetch coalescing onto another
    /// session's in-flight batch.
    Link,
}

/// One parsed trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfRecord {
    pub seq: u64,
    pub kind: ProfKind,
    pub name: String,
    pub sim_s: f64,
    pub span: u64,
    pub parent: Option<u64>,
    /// Session id the emitting thread was stamped with (absent before the
    /// first `set_session`, and on single-owner traces).
    pub session: Option<u64>,
    pub fields: BTreeMap<String, Json>,
}

impl ProfRecord {
    /// A numeric field, if present.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        self.fields.get(key).and_then(Json::as_f64)
    }

    /// An integer field, if present.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.fields.get(key).and_then(Json::as_u64)
    }
}

/// Parse one JSONL line. Returns a descriptive error naming the missing
/// or malformed key.
pub fn parse_record(line: &str) -> Result<ProfRecord, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let kind = match v.get("kind").and_then(Json::as_str) {
        Some("span_start") => ProfKind::SpanStart,
        Some("span_end") => ProfKind::SpanEnd,
        Some("event") => ProfKind::Event,
        Some("link") => ProfKind::Link,
        other => return Err(format!("bad kind {other:?}")),
    };
    let fields = match v.get("fields") {
        Some(Json::Obj(m)) => m.clone(),
        None => BTreeMap::new(),
        Some(other) => return Err(format!("fields is not an object: {other:?}")),
    };
    Ok(ProfRecord {
        seq: v
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or("missing seq".to_string())?,
        kind,
        name: v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing name".to_string())?
            .to_string(),
        sim_s: v
            .get("sim_s")
            .and_then(Json::as_f64)
            .ok_or("missing sim_s".to_string())?,
        span: v.get("span").and_then(Json::as_u64).unwrap_or(0),
        parent: v.get("parent").and_then(Json::as_u64),
        session: v.get("session").and_then(Json::as_u64),
        fields,
    })
}

/// Parse a whole JSONL trace, skipping blank lines. Fails on the first
/// malformed line with its line number.
pub fn load_trace(text: &str) -> Result<Vec<ProfRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_record(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    // Slow sampled-out queries are promoted to the sink after later
    // records; restore the bus's total order.
    out.sort_by_key(|r| r.seq);
    Ok(out)
}

/// The head-sampling rate announced in-band by the bus's `trace.config`
/// event (1 when the trace is unsampled). Span totals over a sampled
/// trace represent roughly `1/rate` of the queries that actually ran.
pub fn sample_rate(records: &[ProfRecord]) -> u64 {
    records
        .iter()
        .find(|r| r.kind == ProfKind::Event && r.name == "trace.config")
        .and_then(|r| r.field_u64("sample_1_in_n"))
        .unwrap_or(1)
}

/// The trace's end timestamp: the largest `sim_s` of any record (0 for an
/// empty trace). Traces start at simulated time 0.
pub fn total_sim_s(records: &[ProfRecord]) -> f64 {
    records.iter().map(|r| r.sim_s).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heaven_obs::{Field, TraceBus};

    /// Records written by the real bus must round-trip through the parser.
    #[test]
    fn round_trips_real_bus_output() {
        let bus = TraceBus::ring(64);
        let q = bus.span_start("query", 0.0, &[("label", Field::Str("q1".into()))]);
        bus.event(
            "tape.transfer",
            1.5,
            &[
                ("bytes", Field::U64(4096)),
                ("cost_s", Field::F64(1.5)),
                ("dir", Field::Str("read".into())),
            ],
        );
        bus.span_end(q, 2.0);
        let text: String = bus.records().iter().map(|r| r.to_json() + "\n").collect();
        let parsed = load_trace(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].kind, ProfKind::SpanStart);
        assert_eq!(parsed[0].name, "query");
        assert_eq!(parsed[1].field_u64("bytes"), Some(4096));
        assert_eq!(parsed[1].field_f64("cost_s"), Some(1.5));
        assert_eq!(parsed[2].kind, ProfKind::SpanEnd);
        assert_eq!(parsed[2].field_f64("dur_s"), Some(2.0));
        assert_eq!(total_sim_s(&parsed), 2.0);
    }

    #[test]
    fn bad_line_reports_line_number() {
        let err =
            load_trace("{\"seq\":0,\"kind\":\"event\",\"name\":\"e\",\"sim_s\":0}\nnot json\n")
                .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
