//! A minimal JSON parser — the reader-side counterpart of
//! `heaven_obs::json`, which only writes. The workspace carries no serde,
//! and trace records use a small, flat schema, so a ~150-line recursive
//! descent parser covers everything `heaven-prof` consumes.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// A parse failure with its byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by the writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trace_record_shape() {
        let line = r#"{"seq":3,"kind":"event","name":"tape.locate","sim_s":1.25,"wall_unix_s":1e9,"span":0,"parent":2,"fields":{"cost_s":0.75,"dir":"read"}}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("event"));
        assert_eq!(v.get("sim_s").unwrap().as_f64(), Some(1.25));
        assert_eq!(v.get("parent").unwrap().as_u64(), Some(2));
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("cost_s").unwrap().as_f64(), Some(0.75));
        assert_eq!(fields.get("dir").unwrap().as_str(), Some("read"));
    }

    #[test]
    fn parses_null_and_escapes() {
        let v = parse(r#"{"parent":null,"s":"a\"bA","arr":[1,-2.5,true]}"#).unwrap();
        assert_eq!(v.get("parent"), Some(&Json::Null));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"bA"));
        assert_eq!(
            v.get("arr"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2.5),
                Json::Bool(true)
            ]))
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn round_trips_obs_writer_output() {
        let mut s = String::new();
        heaven_obs::json::write_str(&mut s, "tricky \"quoted\"\nvalue");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("tricky \"quoted\"\nvalue"));
    }
}
