//! `heaven-prof`: offline analysis of HEAVEN JSONL traces.
//!
//! The trace bus ([`heaven_obs::TraceBus::jsonl`]) streams one JSON object
//! per span/event, timestamped in **simulated** seconds. This crate parses
//! such a trace back (the workspace has no serde; [`json`] is a small
//! hand-written parser) and derives three artifacts:
//!
//! - [`flame`]: a collapsed-stack profile from span nesting, compatible
//!   with `flamegraph.pl` and speedscope,
//! - [`timeline`]: a windowed utilization report (per-drive busy %,
//!   robot-arm busy %, super-tile cache hit rate) as JSON, plus
//!   per-session lanes of query spans and the coalescing edges
//!   (`sched.link` records) between them,
//! - [`tail`]: a tail-latency table per span name, built on the
//!   log-bucketed [`heaven_obs::HistSnapshot`] quantile estimator,
//! - [`critical`]: per-query critical-path attribution — queue vs.
//!   service vs. local time, following span links across sessions to the
//!   shared batch that actually staged the bytes.

pub mod critical;
pub mod flame;
pub mod json;
pub mod tail;
pub mod timeline;
pub mod trace;

pub use trace::{load_trace, ProfKind, ProfRecord};
