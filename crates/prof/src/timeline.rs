//! Windowed utilization: device busy time per simulated-time window.
//!
//! Tape events carry the cost of the operation they conclude
//! (`tape.transfer` at `t` with `cost_s: c` means the drive was busy over
//! `[t−c, t]`), so device busy intervals fall straight out of the event
//! stream: per-drive busy from locate/transfer/rewind, robot-arm busy
//! from media exchanges, and super-tile cache hit rate from the
//! `cache.st.hit`/`cache.st.miss` events. Intervals are merged (union)
//! before windowing, so a window's busy time can never exceed its width.

use crate::trace::{total_sim_s, ProfKind, ProfRecord};
use heaven_obs::json;
use std::collections::BTreeMap;

/// Utilization of one simulated-time window.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    pub start_s: f64,
    pub end_s: f64,
    /// Busy seconds per drive index within this window.
    pub drive_busy_s: BTreeMap<u64, f64>,
    /// Robot-arm busy seconds (media exchanges) within this window.
    pub robot_busy_s: f64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

impl Window {
    pub fn width_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Super-tile cache hit rate in this window (0 with no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// One span on a session's lane.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSpan {
    pub name: String,
    pub span: u64,
    pub start_s: f64,
    pub end_s: f64,
}

/// All spans stamped with one session id, in start order.
#[derive(Debug, Clone, PartialEq)]
pub struct Lane {
    pub session: u64,
    pub spans: Vec<LaneSpan>,
}

/// One coalescing edge: a waiter's span → the shared span it rode
/// (parsed from `sched.link` records).
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    pub name: String,
    pub from: u64,
    pub to: u64,
    pub sim_s: f64,
}

/// The whole utilization report.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    pub window_s: f64,
    pub total_s: f64,
    pub windows: Vec<Window>,
    /// Per-session lanes of session-stamped spans (empty for
    /// single-owner traces, which never call `set_session`).
    pub lanes: Vec<Lane>,
    /// Cross-lane coalescing edges from link records.
    pub edges: Vec<Edge>,
}

/// Merge possibly-overlapping `(start, end)` intervals into a disjoint
/// union, in ascending order.
fn merge_intervals(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|(a, b)| b > a);
    iv.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite"));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        match out.last_mut() {
            Some((_, e)) if a <= *e => *e = e.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Seconds of overlap between a disjoint interval union and `[w0, w1]`.
fn overlap(merged: &[(f64, f64)], w0: f64, w1: f64) -> f64 {
    merged
        .iter()
        .map(|&(a, b)| (b.min(w1) - a.max(w0)).max(0.0))
        .sum()
}

/// Compute the utilization timeline with windows of `window_s` simulated
/// seconds (the last window may be shorter).
pub fn utilization_timeline(records: &[ProfRecord], window_s: f64) -> Timeline {
    let total_s = total_sim_s(records);
    let window_s = if window_s > 0.0 { window_s } else { 1.0 };
    let mut drive_iv: BTreeMap<u64, Vec<(f64, f64)>> = BTreeMap::new();
    let mut robot_iv: Vec<(f64, f64)> = Vec::new();
    let mut hits: Vec<f64> = Vec::new();
    let mut misses: Vec<f64> = Vec::new();
    // Session lanes: session-stamped spans, closed by their end record
    // (or the trace end when truncated), plus link-record edges.
    let mut lane_spans: BTreeMap<u64, Vec<LaneSpan>> = BTreeMap::new();
    let mut open: BTreeMap<u64, (u64, usize)> = BTreeMap::new(); // span → (session, idx)
    let mut edges: Vec<Edge> = Vec::new();
    for rec in records {
        match rec.kind {
            ProfKind::SpanStart => {
                if let Some(session) = rec.session {
                    let spans = lane_spans.entry(session).or_default();
                    open.insert(rec.span, (session, spans.len()));
                    spans.push(LaneSpan {
                        name: rec.name.clone(),
                        span: rec.span,
                        start_s: rec.sim_s,
                        end_s: total_s,
                    });
                }
            }
            ProfKind::SpanEnd => {
                if let Some((session, idx)) = open.remove(&rec.span) {
                    lane_spans.get_mut(&session).expect("open lane")[idx].end_s = rec.sim_s;
                }
            }
            ProfKind::Link => {
                edges.push(Edge {
                    name: rec.name.clone(),
                    from: rec.span,
                    to: rec.parent.unwrap_or(0),
                    sim_s: rec.sim_s,
                });
            }
            ProfKind::Event => {}
        }
        if rec.kind != ProfKind::Event {
            continue;
        }
        match rec.name.as_str() {
            "tape.locate" | "tape.transfer" => {
                if let (Some(drive), Some(cost)) = (rec.field_u64("drive"), rec.field_f64("cost_s"))
                {
                    drive_iv
                        .entry(drive)
                        .or_default()
                        .push((rec.sim_s - cost, rec.sim_s));
                }
            }
            "tape.unmount" => {
                if let (Some(drive), Some(cost)) =
                    (rec.field_u64("drive"), rec.field_f64("rewind_s"))
                {
                    drive_iv
                        .entry(drive)
                        .or_default()
                        .push((rec.sim_s - cost, rec.sim_s));
                }
            }
            "tape.mount" => {
                if let Some(cost) = rec.field_f64("cost_s") {
                    robot_iv.push((rec.sim_s - cost, rec.sim_s));
                }
            }
            "cache.st.hit" => hits.push(rec.sim_s),
            "cache.st.miss" => misses.push(rec.sim_s),
            _ => {}
        }
    }
    let drive_merged: BTreeMap<u64, Vec<(f64, f64)>> = drive_iv
        .into_iter()
        .map(|(d, iv)| (d, merge_intervals(iv)))
        .collect();
    let robot_merged = merge_intervals(robot_iv);
    let mut windows = Vec::new();
    let mut w0 = 0.0;
    while w0 < total_s || (w0 == 0.0 && windows.is_empty()) {
        let w1 = (w0 + window_s).min(total_s.max(window_s));
        let in_window = |ts: &[f64]| {
            ts.iter()
                // half-open [w0, w1); the final window is closed at total.
                .filter(|&&t| t >= w0 && (t < w1 || (w1 >= total_s && t <= w1)))
                .count() as u64
        };
        windows.push(Window {
            start_s: w0,
            end_s: w1,
            drive_busy_s: drive_merged
                .iter()
                .map(|(&d, iv)| (d, overlap(iv, w0, w1)))
                .collect(),
            robot_busy_s: overlap(&robot_merged, w0, w1),
            cache_hits: in_window(&hits),
            cache_misses: in_window(&misses),
        });
        w0 = w1;
        if w1 >= total_s {
            break;
        }
    }
    Timeline {
        window_s,
        total_s,
        windows,
        lanes: lane_spans
            .into_iter()
            .map(|(session, spans)| Lane { session, spans })
            .collect(),
        edges,
    }
}

impl Timeline {
    /// Render the timeline as one JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"window_s\":");
        json::write_f64(&mut out, self.window_s);
        out.push_str(",\"total_s\":");
        json::write_f64(&mut out, self.total_s);
        out.push_str(",\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"start_s\":");
            json::write_f64(&mut out, w.start_s);
            out.push_str(",\"end_s\":");
            json::write_f64(&mut out, w.end_s);
            out.push_str(",\"drive_busy\":{");
            for (j, (d, busy)) in w.drive_busy_s.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::write_str(&mut out, &d.to_string());
                out.push_str(":{\"busy_s\":");
                json::write_f64(&mut out, *busy);
                out.push_str(",\"busy_frac\":");
                let frac = if w.width_s() > 0.0 {
                    busy / w.width_s()
                } else {
                    0.0
                };
                json::write_f64(&mut out, frac);
                out.push('}');
            }
            out.push_str("},\"robot_busy_s\":");
            json::write_f64(&mut out, w.robot_busy_s);
            out.push_str(",\"cache_hits\":");
            out.push_str(&w.cache_hits.to_string());
            out.push_str(",\"cache_misses\":");
            out.push_str(&w.cache_misses.to_string());
            out.push_str(",\"cache_hit_rate\":");
            json::write_f64(&mut out, w.hit_rate());
            out.push('}');
        }
        out.push_str("],\"lanes\":[");
        for (i, lane) in self.lanes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"session\":");
            out.push_str(&lane.session.to_string());
            out.push_str(",\"spans\":[");
            for (j, s) in lane.spans.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                json::write_str(&mut out, &s.name);
                out.push_str(",\"span\":");
                out.push_str(&s.span.to_string());
                out.push_str(",\"start_s\":");
                json::write_f64(&mut out, s.start_s);
                out.push_str(",\"end_s\":");
                json::write_f64(&mut out, s.end_s);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("],\"edges\":[");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_str(&mut out, &e.name);
            out.push_str(",\"from\":");
            out.push_str(&e.from.to_string());
            out.push_str(",\"to\":");
            out.push_str(&e.to.to_string());
            out.push_str(",\"sim_s\":");
            json::write_f64(&mut out, e.sim_s);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::load_trace;
    use heaven_obs::{Field, TraceBus};

    fn trace_text(bus: &TraceBus) -> String {
        bus.records().iter().map(|r| r.to_json() + "\n").collect()
    }

    #[test]
    fn merge_and_overlap() {
        let m = merge_intervals(vec![(0.0, 2.0), (1.0, 3.0), (5.0, 6.0)]);
        assert_eq!(m, vec![(0.0, 3.0), (5.0, 6.0)]);
        assert!((overlap(&m, 2.0, 5.5) - 1.5).abs() < 1e-12);
        assert_eq!(overlap(&m, 3.0, 5.0), 0.0);
    }

    #[test]
    fn drive_busy_never_exceeds_window() {
        let bus = TraceBus::ring(64);
        // Overlapping claims on drive 0 (can't happen with one sim clock,
        // but the union must still stay within the window).
        bus.event(
            "tape.transfer",
            4.0,
            &[("drive", Field::U64(0)), ("cost_s", Field::F64(4.0))],
        );
        bus.event(
            "tape.locate",
            5.0,
            &[("drive", Field::U64(0)), ("cost_s", Field::F64(3.0))],
        );
        let recs = load_trace(&trace_text(&bus)).unwrap();
        let tl = utilization_timeline(&recs, 5.0);
        for w in &tl.windows {
            for (&d, &busy) in &w.drive_busy_s {
                assert!(
                    busy <= w.width_s() + 1e-9,
                    "drive {d} busy {busy} exceeds window {}",
                    w.width_s()
                );
            }
        }
        // union of [0,4] and [2,5] = [0,5]: all 5 s of window 0 busy
        assert!((tl.windows[0].drive_busy_s[&0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn robot_and_cache_rates_windowed() {
        let bus = TraceBus::ring(64);
        bus.event(
            "tape.mount",
            1.0,
            &[("medium", Field::U64(0)), ("cost_s", Field::F64(1.0))],
        );
        bus.event("cache.st.miss", 1.5, &[("st", Field::U64(1))]);
        bus.event(
            "cache.st.hit",
            6.0,
            &[("st", Field::U64(1)), ("bytes", Field::U64(10))],
        );
        bus.event(
            "cache.st.hit",
            9.0,
            &[("st", Field::U64(1)), ("bytes", Field::U64(10))],
        );
        let recs = load_trace(&trace_text(&bus)).unwrap();
        let tl = utilization_timeline(&recs, 5.0);
        assert_eq!(tl.windows.len(), 2);
        assert!((tl.windows[0].robot_busy_s - 1.0).abs() < 1e-12);
        assert_eq!(tl.windows[0].cache_misses, 1);
        assert_eq!(tl.windows[0].cache_hits, 0);
        assert_eq!(tl.windows[1].cache_hits, 2);
        assert_eq!(tl.windows[1].hit_rate(), 1.0);
        let js = tl.to_json();
        assert!(js.contains("\"robot_busy_s\":1"), "{js}");
        assert!(js.contains("\"cache_hit_rate\":1"), "{js}");
        // the JSON parses back with our own parser
        crate::json::parse(&js).unwrap();
    }

    #[test]
    fn session_lanes_and_coalescing_edges() {
        let bus = TraceBus::ring(64);
        bus.set_session(1);
        let q1 = bus.span_start("query", 0.0, &[]);
        let b = bus.span_start("sched.batch", 0.5, &[]);
        bus.span_end(b, 3.0);
        bus.span_end(q1, 4.0);
        bus.set_session(2);
        let q2 = bus.span_start("query", 1.0, &[]);
        bus.link("sched.link", 3.0, q2, b, &[("coalesced", Field::U64(1))]);
        // q2 left open: its lane span must close at the trace end.
        let recs = load_trace(&trace_text(&bus)).unwrap();
        let tl = utilization_timeline(&recs, 10.0);
        assert_eq!(tl.lanes.len(), 2);
        assert_eq!(tl.lanes[0].session, 1);
        assert_eq!(tl.lanes[0].spans.len(), 2);
        assert_eq!(tl.lanes[1].session, 2);
        assert_eq!(tl.lanes[1].spans[0].end_s, tl.total_s);
        assert_eq!(tl.edges.len(), 1);
        assert_eq!((tl.edges[0].from, tl.edges[0].to), (q2, b));
        let js = tl.to_json();
        assert!(js.contains("\"lanes\":["), "{js}");
        assert!(js.contains("\"edges\":["), "{js}");
        crate::json::parse(&js).unwrap();
    }
}
