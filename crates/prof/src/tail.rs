//! Tail-latency report: per-span-name duration quantiles.
//!
//! Every `span_end` record carries a `dur_s` field; durations are fed
//! into the same log-bucketed [`HistSnapshot`] the live metrics use, so
//! the profiler's offline quantiles agree with the online ones.

use crate::trace::{ProfKind, ProfRecord};
use heaven_obs::HistSnapshot;
use std::collections::BTreeMap;

/// One row of the tail-latency table.
#[derive(Debug, Clone)]
pub struct TailRow {
    pub name: String,
    pub count: u64,
    pub total_s: f64,
    pub p50_s: f64,
    pub p90_s: f64,
    pub p99_s: f64,
    pub p999_s: f64,
    pub max_s: f64,
}

/// Aggregate span durations by span name, sorted by descending total time.
pub fn tail_report(records: &[ProfRecord]) -> Vec<TailRow> {
    let mut hists: BTreeMap<&str, HistSnapshot> = BTreeMap::new();
    for rec in records {
        if rec.kind != ProfKind::SpanEnd {
            continue;
        }
        let Some(dur) = rec.field_f64("dur_s") else {
            continue;
        };
        hists.entry(&rec.name).or_default().observe(dur);
    }
    let mut rows: Vec<TailRow> = hists
        .into_iter()
        .map(|(name, h)| TailRow {
            name: name.to_string(),
            count: h.count,
            total_s: h.sum,
            p50_s: h.quantile(0.50),
            p90_s: h.quantile(0.90),
            p99_s: h.quantile(0.99),
            p999_s: h.quantile(0.999),
            max_s: h.max,
        })
        .collect();
    rows.sort_by(|a, b| b.total_s.partial_cmp(&a.total_s).expect("finite"));
    rows
}

/// Render the report as an aligned text table (simulated seconds).
pub fn render_table(rows: &[TailRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "span", "count", "total_s", "p50_s", "p90_s", "p99_s", "p99.9_s", "max_s"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:>8} {:>12.6} {:>10.6} {:>10.6} {:>10.6} {:>10.6} {:>10.6}\n",
            r.name, r.count, r.total_s, r.p50_s, r.p90_s, r.p99_s, r.p999_s, r.max_s
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::load_trace;
    use heaven_obs::TraceBus;

    #[test]
    fn aggregates_by_name_and_sorts_by_total() {
        let bus = TraceBus::ring(64);
        let mut t = 0.0;
        for dur in [1.0, 2.0, 3.0] {
            let s = bus.span_start("query", t, &[]);
            t += dur;
            bus.span_end(s, t);
        }
        let s = bus.span_start("hsm.stage", t, &[]);
        bus.span_end(s, t + 0.5);
        let text: String = bus.records().iter().map(|r| r.to_json() + "\n").collect();
        let rows = tail_report(&load_trace(&text).unwrap());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "query");
        assert_eq!(rows[0].count, 3);
        assert!((rows[0].total_s - 6.0).abs() < 1e-12);
        assert!((rows[0].max_s - 3.0).abs() < 1e-12);
        // quantiles land within the observed range
        assert!(rows[0].p50_s >= 1.0 && rows[0].p50_s <= 3.0);
        assert!(rows[0].p999_s <= rows[0].max_s + 1e-12);
        assert_eq!(rows[1].name, "hsm.stage");
        let table = render_table(&rows);
        assert!(table.lines().count() == 3, "{table}");
        assert!(table.contains("query"), "{table}");
    }
}
