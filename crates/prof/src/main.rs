//! `heaven-prof` — offline profiler for HEAVEN JSONL traces.
//!
//! Usage:
//!
//! ```text
//! heaven-prof <trace.jsonl> [--out-dir DIR] [--window SECONDS]
//! ```
//!
//! Reads a trace written by `TraceConfig::Jsonl` and emits three
//! artifacts into the output directory (default: alongside the trace):
//!
//! * `flame.folded` — collapsed stacks (simulated-microsecond weights)
//!   for `flamegraph.pl` or speedscope,
//! * `timeline.json` — windowed drive/robot utilization and cache hit
//!   rate over simulated time,
//! * `tail.txt` — per-span-name tail-latency table (also printed to
//!   stdout),
//! * `critical_path.json` — per-query queue/service/local attribution,
//!   following span links across sessions to the shared batch fetch
//!   that staged each query's bytes (summary table also printed).

use heaven_prof::critical;
use heaven_prof::flame::{collapsed_stacks, folded_total_s};
use heaven_prof::tail::{render_table, tail_report};
use heaven_prof::timeline::utilization_timeline;
use heaven_prof::trace::{load_trace, sample_rate, total_sim_s};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: heaven-prof <trace.jsonl> [--out-dir DIR] [--window SECONDS]";

struct Args {
    trace: PathBuf,
    out_dir: Option<PathBuf>,
    window_s: f64,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut trace = None;
    let mut out_dir = None;
    let mut window_s = 60.0;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out-dir" => {
                let v = it.next().ok_or("--out-dir requires a path")?;
                out_dir = Some(PathBuf::from(v));
            }
            "--window" => {
                let v = it.next().ok_or("--window requires seconds")?;
                let w: f64 = v.parse().map_err(|_| format!("bad --window {v:?}"))?;
                if w.is_nan() || w <= 0.0 {
                    return Err(format!("--window must be positive, got {v}"));
                }
                window_s = w;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => {
                if trace.replace(PathBuf::from(other)).is_some() {
                    return Err("more than one trace file given".to_string());
                }
            }
        }
    }
    Ok(Args {
        trace: trace.ok_or(USAGE)?,
        out_dir,
        window_s,
    })
}

fn run(args: &Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.trace)
        .map_err(|e| format!("cannot read {}: {e}", args.trace.display()))?;
    let records = load_trace(&text).map_err(|e| format!("{}: {e}", args.trace.display()))?;
    let out_dir = args
        .out_dir
        .clone()
        .unwrap_or_else(|| args.trace.parent().unwrap_or(Path::new(".")).to_path_buf());
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let write = |name: &str, content: &str| -> Result<PathBuf, String> {
        let path = out_dir.join(name);
        std::fs::write(&path, content)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(path)
    };

    let total = total_sim_s(&records);
    println!(
        "trace: {} records, {:.3} simulated seconds",
        records.len(),
        total
    );
    let rate = sample_rate(&records);
    if rate > 1 {
        println!(
            "head-sampled 1-in-{rate} (--trace-sample): recorded query spans \
             represent ~1/{rate} of the queries that ran"
        );
    }

    let folded = collapsed_stacks(&records);
    let flame_path = write("flame.folded", &folded)?;
    println!(
        "wrote {} ({} stacks, {:.3} s accounted)",
        flame_path.display(),
        folded.lines().count(),
        folded_total_s(&folded)
    );

    let timeline = utilization_timeline(&records, args.window_s);
    let tl_path = write("timeline.json", &(timeline.to_json() + "\n"))?;
    println!(
        "wrote {} ({} windows of {:.3} s)",
        tl_path.display(),
        timeline.windows.len(),
        timeline.window_s
    );

    let rows = tail_report(&records);
    let table = render_table(&rows);
    let tail_path = write("tail.txt", &table)?;
    println!(
        "wrote {} ({} span names)\n",
        tail_path.display(),
        rows.len()
    );
    print!("{table}");

    let report = critical::critical_path(&records);
    let cp_path = write("critical_path.json", &(critical::to_json(&report) + "\n"))?;
    let links: usize = report.iter().map(|q| q.links.len()).sum();
    let coalesced: u64 = report.iter().map(|q| q.coalesced).sum();
    println!(
        "\nwrote {} ({} queries, {links} links, {coalesced} coalesced fetches)",
        cp_path.display(),
        report.len()
    );
    if !report.is_empty() {
        print!("{}", critical::render(&report));
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("heaven-prof: {e}");
            ExitCode::FAILURE
        }
    }
}
