//! Collapsed-stack profiles from span nesting.
//!
//! Output is the `flamegraph.pl` / speedscope "folded" format: one line
//! per unique stack, frames joined by `;`, followed by a space and an
//! integer weight. Weights are **microseconds of simulated time**; each
//! line carries a span's *self* time (its duration minus its children's),
//! so the sum of all lines equals the total simulated time covered by
//! root spans. A synthetic `(idle)` root accounts for simulated time not
//! covered by any root span, making the file total equal the trace's end
//! timestamp exactly.

use crate::trace::{total_sim_s, ProfKind, ProfRecord};
use std::collections::BTreeMap;

#[derive(Debug)]
struct SpanNode {
    name: String,
    start_s: f64,
    end_s: Option<f64>,
    parent: Option<u64>,
    children_dur_s: f64,
}

/// Build the folded flamegraph text from a parsed trace.
pub fn collapsed_stacks(records: &[ProfRecord]) -> String {
    let end_of_trace = total_sim_s(records);
    let mut spans: BTreeMap<u64, SpanNode> = BTreeMap::new();
    for rec in records {
        match rec.kind {
            ProfKind::SpanStart => {
                spans.insert(
                    rec.span,
                    SpanNode {
                        name: rec.name.clone(),
                        start_s: rec.sim_s,
                        end_s: None,
                        parent: rec.parent,
                        children_dur_s: 0.0,
                    },
                );
            }
            ProfKind::SpanEnd => {
                if let Some(node) = spans.get_mut(&rec.span) {
                    node.end_s = Some(rec.sim_s);
                }
            }
            // Links carry no duration; the linked batch span is charged
            // to its own (the drainer's) stack.
            ProfKind::Event | ProfKind::Link => {}
        }
    }
    // A span the trace never closed (truncated file) ends with the trace.
    let dur = |node: &SpanNode| (node.end_s.unwrap_or(end_of_trace) - node.start_s).max(0.0);
    // Charge each span's duration to its parent's children time.
    let charges: Vec<(u64, f64)> = spans
        .values()
        .filter_map(|node| node.parent.map(|p| (p, dur(node))))
        .collect();
    for (parent, d) in charges {
        if let Some(p) = spans.get_mut(&parent) {
            p.children_dur_s += d;
        }
    }
    // Emit one folded line per span with positive self time, aggregating
    // identical stacks.
    let stack_of = |id: u64| -> String {
        let mut frames = Vec::new();
        let mut cur = Some(id);
        while let Some(s) = cur {
            let Some(node) = spans.get(&s) else { break };
            frames.push(node.name.as_str());
            cur = node.parent;
        }
        frames.reverse();
        frames.join(";")
    };
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    let mut roots_dur_s = 0.0;
    for (&id, node) in &spans {
        if node.parent.is_none() {
            roots_dur_s += dur(node);
        }
        let self_s = (dur(node) - node.children_dur_s).max(0.0);
        let self_us = (self_s * 1e6).round() as u64;
        if self_us > 0 {
            *folded.entry(stack_of(id)).or_insert(0) += self_us;
        }
    }
    let idle_us = ((end_of_trace - roots_dur_s).max(0.0) * 1e6).round() as u64;
    if idle_us > 0 {
        *folded.entry("(idle)".to_string()).or_insert(0) += idle_us;
    }
    let mut out = String::new();
    for (stack, us) in folded {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// Sum of all weights in a folded file, in simulated seconds — for
/// validation against the trace's end timestamp.
pub fn folded_total_s(folded: &str) -> f64 {
    folded
        .lines()
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|w| w.parse::<u64>().ok())
        .sum::<u64>() as f64
        / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::load_trace;
    use heaven_obs::{Field, TraceBus};

    fn trace_text(bus: &TraceBus) -> String {
        bus.records().iter().map(|r| r.to_json() + "\n").collect()
    }

    #[test]
    fn self_time_partitions_root_duration() {
        let bus = TraceBus::ring(64);
        let q = bus.span_start("query", 0.0, &[]);
        let f = bus.span_start("heaven.st_fetch", 2.0, &[("st", Field::U64(1))]);
        bus.span_end(f, 7.0);
        bus.span_end(q, 10.0);
        let recs = load_trace(&trace_text(&bus)).unwrap();
        let folded = collapsed_stacks(&recs);
        // query self = 10 - 5 = 5 s; st_fetch self = 5 s; no idle.
        assert!(folded.contains("query 5000000\n"), "{folded}");
        assert!(
            folded.contains("query;heaven.st_fetch 5000000\n"),
            "{folded}"
        );
        assert!(!folded.contains("(idle)"));
        assert!((folded_total_s(&folded) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn idle_root_covers_gaps() {
        let bus = TraceBus::ring(64);
        let a = bus.span_start("query", 1.0, &[]);
        bus.span_end(a, 3.0);
        let b = bus.span_start("query", 5.0, &[]);
        bus.span_end(b, 6.0);
        bus.event("tape.mount", 8.0, &[]); // pushes trace end to 8 s
        let recs = load_trace(&trace_text(&bus)).unwrap();
        let folded = collapsed_stacks(&recs);
        // roots cover 3 s of the 8 s trace: 5 s idle.
        assert!(folded.contains("(idle) 5000000\n"), "{folded}");
        assert!(
            folded.contains("query 3000000\n"),
            "two roots aggregate: {folded}"
        );
        assert!((folded_total_s(&folded) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn unclosed_span_ends_with_trace() {
        let bus = TraceBus::ring(64);
        let _leaked = bus.span_start("query", 0.0, &[]);
        bus.event("tape.mount", 4.0, &[]);
        let recs = load_trace(&trace_text(&bus)).unwrap();
        let folded = collapsed_stacks(&recs);
        assert!(folded.contains("query 4000000\n"), "{folded}");
        assert!((folded_total_s(&folded) - 4.0).abs() < 1e-6);
    }
}
