//! Profiling a head-sampled trace (ISSUE 6): `heaven-prof` totals over a
//! 1-in-n sampled trace, scaled back up by the in-band `trace.config`
//! sampling rate, must land within tolerance of the unsampled totals for
//! the same workload.

use heaven_array::{CellType, MDArray, Minterval, Point, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_core::{ExportMode, Heaven, HeavenConfig};
use heaven_obs::TraceConfig;
use heaven_prof::tail::tail_report;
use heaven_prof::trace::{load_trace, sample_rate, ProfKind};
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, SimClock, TapeLibrary};

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

/// Run the same bracketed-query workload under `trace` and return the
/// trace as JSONL text. 24 identical cold queries (caches cleared before
/// each), so per-query cost is roughly uniform and sampling every n-th
/// query keeps a representative subset.
fn workload_trace(trace: TraceConfig) -> String {
    let clock = SimClock::new();
    let db = Database::new(heaven_tape::DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("c", CellType::I32, 2).unwrap();
    let arr = MDArray::generate(mi(&[(0, 59), (0, 59)]), CellType::I32, |p: &Point| {
        (p.coord(0) * 1000 + p.coord(1)) as f64
    });
    let oid = adb
        .insert_object(
            "c",
            &arr,
            Tiling::Regular {
                tile_shape: vec![10, 10],
            },
        )
        .unwrap();
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 2, clock);
    let config = HeavenConfig {
        supertile_bytes: Some(4 * 500),
        trace,
        ..HeavenConfig::default()
    };
    let mut heaven = Heaven::new(adb, lib, config);
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    let region = mi(&[(10, 39), (10, 39)]);
    for _ in 0..24 {
        // Clear caches so every query pays the same staging cost.
        heaven.clear_caches();
        heaven.begin_query("cold scan");
        heaven.fetch_region_hierarchical(oid, &region).unwrap();
        heaven.end_query().unwrap();
    }
    heaven
        .trace()
        .records()
        .iter()
        .map(|r| r.to_json() + "\n")
        .collect()
}

#[test]
fn sampled_totals_scale_by_the_sampling_rate() {
    const N: u64 = 4;
    let full = load_trace(&workload_trace(TraceConfig::ring(1 << 16))).unwrap();
    let sampled = load_trace(&workload_trace(TraceConfig::ring(1 << 16).with_sample(N))).unwrap();

    assert_eq!(sample_rate(&full), 1);
    assert_eq!(sample_rate(&sampled), N, "trace.config announces the rate");

    let query_spans = |recs: &[heaven_prof::trace::ProfRecord]| {
        recs.iter()
            .filter(|r| r.kind == ProfKind::SpanStart && r.name == "query")
            .count() as u64
    };
    let full_queries = query_spans(&full);
    assert_eq!(full_queries, 24);
    let kept = query_spans(&sampled);
    assert_eq!(kept, full_queries.div_ceil(N));

    // heaven-prof's tail report over the sampled trace, scaled back up by
    // the sampling rate, recovers the unsampled query total. The queries
    // are near-identical cold scans, so the tolerance is tight (25%).
    let total = |recs: &[heaven_prof::trace::ProfRecord]| {
        tail_report(recs)
            .iter()
            .find(|r| r.name == "query")
            .map(|r| r.total_s)
            .expect("query row in tail report")
    };
    let full_total = total(&full);
    let scaled = total(&sampled) * N as f64;
    assert!(full_total > 0.0, "cold queries advance simulated time");
    assert!(
        (scaled - full_total).abs() <= 0.25 * full_total,
        "scaled sampled total {scaled} vs unsampled {full_total}"
    );
}
