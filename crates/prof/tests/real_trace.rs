//! End-to-end: profile a trace produced by a real HEAVEN workload.
//!
//! Exercises the acceptance properties of the profiler against actual
//! span nesting and tape events (not hand-built records): the collapsed
//! stacks partition the trace's simulated time, and windowed device busy
//! time never exceeds the window length.

use heaven_array::{CellType, MDArray, Minterval, Point, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_core::{AccessPattern, ClusteringStrategy, ExportMode, Heaven, HeavenConfig};
use heaven_obs::TraceConfig;
use heaven_prof::flame::{collapsed_stacks, folded_total_s};
use heaven_prof::tail::tail_report;
use heaven_prof::timeline::utilization_timeline;
use heaven_prof::trace::{load_trace, total_sim_s};
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, SimClock, TapeLibrary};

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

/// Run a small insert → export → cold query → warm query workload with an
/// in-memory trace, and return the trace as JSONL text.
fn workload_trace() -> String {
    let clock = SimClock::new();
    let db = Database::new(heaven_tape::DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("c", CellType::I32, 2).unwrap();
    let arr = MDArray::generate(mi(&[(0, 59), (0, 59)]), CellType::I32, |p: &Point| {
        (p.coord(0) * 1000 + p.coord(1)) as f64
    });
    let oid = adb
        .insert_object(
            "c",
            &arr,
            Tiling::Regular {
                tile_shape: vec![10, 10],
            },
        )
        .unwrap();
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 2, clock);
    let config = HeavenConfig {
        supertile_bytes: Some(4 * 500),
        clustering: ClusteringStrategy::EStar(AccessPattern::Uniform),
        trace: TraceConfig::ring(1 << 16),
        ..HeavenConfig::default()
    };
    let mut heaven = Heaven::new(adb, lib, config);
    heaven.export_object(oid, ExportMode::Tct).unwrap();
    heaven.clear_caches();
    for q in [mi(&[(0, 29), (0, 29)]), mi(&[(30, 59), (0, 29)])] {
        heaven.fetch_region_hierarchical(oid, &q).unwrap(); // cold
        heaven.fetch_region_hierarchical(oid, &q).unwrap(); // warm
    }
    heaven
        .trace()
        .records()
        .iter()
        .map(|r| r.to_json() + "\n")
        .collect()
}

#[test]
fn profiles_a_real_workload() {
    let text = workload_trace();
    let records = load_trace(&text).expect("real trace parses");
    assert!(records.len() > 20, "expected a substantial trace");
    let total = total_sim_s(&records);
    assert!(total > 0.0);

    // Acceptance: root spans (plus synthetic idle) sum to the trace's
    // total simulated time within 1%.
    let folded = collapsed_stacks(&records);
    assert!(!folded.is_empty());
    let accounted = folded_total_s(&folded);
    assert!(
        (accounted - total).abs() <= 0.01 * total,
        "folded weights sum to {accounted}, trace covers {total}"
    );
    // The cold fetches reach tape, so tape frames appear in some stack.
    assert!(folded.contains("query"), "{folded}");

    // Per-drive and robot busy time within each window never exceed the
    // window's wall (simulated) time.
    for window_s in [1.0, 10.0, total] {
        let tl = utilization_timeline(&records, window_s);
        assert!(!tl.windows.is_empty());
        for w in &tl.windows {
            let width = w.width_s() + 1e-9;
            assert!(
                w.robot_busy_s <= width,
                "robot busy {} in a {}-s window",
                w.robot_busy_s,
                w.width_s()
            );
            for (&d, &busy) in &w.drive_busy_s {
                assert!(
                    busy <= width,
                    "drive {d} busy {busy} in a {}-s window",
                    w.width_s()
                );
            }
        }
        // The workload did real tape work: some window shows drive busy.
        let any_busy = tl
            .windows
            .iter()
            .any(|w| w.drive_busy_s.values().any(|&b| b > 0.0));
        assert!(any_busy, "no drive activity recorded in the timeline");
    }

    // The tail report sees the query spans with sane quantiles.
    let rows = tail_report(&records);
    let query = rows
        .iter()
        .find(|r| r.name == "query")
        .expect("query spans in tail report");
    assert_eq!(query.count, 4);
    assert!(query.p50_s <= query.p999_s + 1e-12);
    assert!(query.p999_s <= query.max_s + 1e-12);
}
