//! The PR-10 acceptance run: 8 chaos-stressed sessions produce a trace
//! whose span links let `critical_path` attribute every query's latency
//! — local vs. queue vs. service — exactly, following coalescing edges
//! across sessions to the shared `sched.batch` fetch that staged the
//! bytes. The same run must populate the queue/service histograms, trip
//! the stall watchdog (drive-failure chaos forces requeues past the
//! one-window threshold), and surface trace exemplars on the query
//! latency histogram's Prometheus exposition.

use std::collections::BTreeSet;
use std::sync::Barrier;
use std::time::Duration;

use heaven_array::{CellType, MDArray, Minterval, Point, Tile, Tiling};
use heaven_arraydb::ArrayDb;
use heaven_core::{ExportMode, Heaven, HeavenConfig};
use heaven_obs::TraceConfig;
use heaven_prof::critical::{critical_path, render, to_json};
use heaven_prof::timeline::utilization_timeline;
use heaven_prof::trace::{load_trace, ProfKind};
use heaven_rdbms::Database;
use heaven_tape::{DeviceProfile, DiskProfile, FaultConfig, SimClock, TapeLibrary};

const TILE_EDGE: i64 = 32;
const GRID: i64 = 4;
const WORKERS: usize = 8;

fn mi(b: &[(i64, i64)]) -> Minterval {
    Minterval::new(b).unwrap()
}

fn tile_region(t: i64) -> Minterval {
    let (gx, gy) = (t % GRID, t / GRID);
    mi(&[
        (gx * TILE_EDGE, (gx + 1) * TILE_EDGE - 1),
        (gy * TILE_EDGE, (gy + 1) * TILE_EDGE - 1),
    ])
}

/// Two exported objects on their own media, one super-tile per tile,
/// ring tracing on, stall watchdog armed at one drain window.
fn build() -> (Heaven, Vec<u64>) {
    let clock = SimClock::new();
    let db = Database::new(DiskProfile::scsi2003(), clock.clone(), 4096);
    let mut adb = ArrayDb::create(db).unwrap();
    adb.create_collection("causal", CellType::F32, 2).unwrap();
    let dom = mi(&[(0, GRID * TILE_EDGE - 1), (0, GRID * TILE_EDGE - 1)]);
    let mut oids = Vec::new();
    for o in 0..2 {
        let arr = MDArray::generate(dom.clone(), CellType::F32, |p: &Point| {
            (o * 1_000_000 + p.coord(0) * 1000 + p.coord(1)) as f64
        });
        oids.push(
            adb.insert_object(
                "causal",
                &arr,
                Tiling::Regular {
                    tile_shape: vec![TILE_EDGE as u64, TILE_EDGE as u64],
                },
            )
            .unwrap(),
        );
    }
    let tile_encoded = (Tile::header_len(2) + (TILE_EDGE * TILE_EDGE) as usize * 4) as u64;
    let config = HeavenConfig {
        supertile_bytes: Some(tile_encoded),
        mem_cache_bytes: 0,
        medium_per_object: true,
        cache_shards: 8,
        cross_session_batching: true,
        dual_copy: true,
        stall_window_mult: 1.0,
        trace: TraceConfig::ring(1 << 16),
        ..HeavenConfig::default()
    };
    let lib = TapeLibrary::new(DeviceProfile::ibm3590(), 2, clock);
    let mut heaven = Heaven::new(adb, lib, config);
    for &oid in &oids {
        heaven.export_object(oid, ExportMode::Tct).unwrap();
    }
    (heaven, oids)
}

#[test]
fn eight_session_chaos_trace_attributes_every_query() {
    let (heaven, oids) = build();
    let mut heaven = heaven.into_concurrent();
    heaven.set_batch_window(Duration::from_millis(50));
    // Drive-failure chaos: failed batched fetches requeue through the
    // retry/failover ladder, surviving extra drain passes — exactly what
    // the stall watchdog (armed at 1 window) must flag.
    let mut fc = FaultConfig::quiet(17);
    fc.drive_failure_per_read = 0.3;
    heaven.set_fault_plan(Some(fc));
    let heaven = heaven;
    let barrier = Barrier::new(WORKERS);
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let heaven = &heaven;
            let oids = &oids;
            let barrier = &barrier;
            s.spawn(move || {
                let session = heaven.session();
                barrier.wait();
                // Round 1: every session wants the same super-tile — the
                // first registers the fetch, the rest coalesce onto it.
                session.fetch_region(oids[0], &tile_region(0)).unwrap();
                // Round 2: disjoint chaos-stressed regions, 4 per session.
                for t in 0..((GRID * GRID) / 4) {
                    let tile = (w as i64 / 2) * 4 + t;
                    session
                        .fetch_region(oids[w % 2], &tile_region(tile))
                        .unwrap();
                }
            });
        }
    });

    // ---- scheduler decomposition and watchdog, straight off metrics
    let m = heaven.metrics();
    assert!(
        m.histogram("sched.queue_wait_s").snapshot().count > 0,
        "drainer must observe queue time per physical fetch"
    );
    assert!(
        m.histogram("sched.service_s").snapshot().count > 0,
        "drainer must observe service time per physical fetch"
    );
    assert!(
        m.counter("sched.requeued_fetches").get() > 0,
        "30% drive failures must force requeues"
    );
    assert!(
        m.counter("sched.stalls").get() > 0,
        "a requeued fetch survives >1 drain pass and must be flagged"
    );

    // ---- exemplars in the Prometheus exposition
    let prom = m.render_prometheus();
    let exemplar_line = prom
        .lines()
        .find(|l| l.starts_with("heaven_query_latency_s_bucket") && l.contains(" # {trace_id="))
        .unwrap_or_else(|| panic!("query latency must carry exemplars:\n{prom}"));
    assert!(exemplar_line.contains("span_id=\""), "{exemplar_line}");

    // ---- the trace itself: parse, link, attribute
    let text: String = heaven
        .trace()
        .records()
        .iter()
        .map(|r| r.to_json() + "\n")
        .collect();
    let records = load_trace(&text).expect("concurrent chaos trace parses");
    let stall = records
        .iter()
        .find(|r| r.kind == ProfKind::Event && r.name == "sched.stall")
        .expect("watchdog must name the stall in the trace");
    assert!(
        stall.field_u64("medium").is_some() && stall.field_u64("drains").is_some(),
        "stall event names the blocking medium: {stall:?}"
    );

    let report = critical_path(&records);
    assert_eq!(
        report.len(),
        WORKERS * 5,
        "every query span becomes one report row"
    );
    let sessions: BTreeSet<u64> = report.iter().map(|q| q.session).collect();
    assert_eq!(
        sessions.len(),
        WORKERS,
        "one lane per session: {sessions:?}"
    );
    assert!(!sessions.contains(&0), "every query is session-stamped");

    for q in &report {
        // Acceptance: local + fetch attribution covers the query span
        // total within ±1%.
        let err = (q.local_s + q.fetch_s - q.total_s).abs();
        assert!(
            err <= 0.01 * q.total_s.max(1e-9),
            "attribution drifted {err}s on a {}s query (span {})",
            q.total_s,
            q.span
        );
        // Every tertiary fetch links to the shared batch that served it,
        // and the link resolves to the drainer's session.
        assert_eq!(
            q.links.len() as u64,
            q.fetches,
            "span {}: {} fetches but {} links",
            q.span,
            q.fetches,
            q.links.len()
        );
        for l in &q.links {
            assert_ne!(l.to, 0, "link target must be a real batch span");
            assert_ne!(l.served_by, 0, "batch span must be session-stamped");
        }
    }
    let coalesced: u64 = report.iter().map(|q| q.coalesced).sum();
    assert!(
        coalesced > 0,
        "8 sessions racing for one super-tile must coalesce"
    );
    // Some query's bytes were staged by a different session's drain pass.
    assert!(
        report
            .iter()
            .any(|q| q.links.iter().any(|l| l.served_by != q.session)),
        "cross-session causality must appear in the links"
    );

    // ---- artifacts render and re-parse
    let js = to_json(&report);
    heaven_prof::json::parse(&js).expect("critical_path.json is valid");
    assert!(render(&report).contains("dominant"));
    let tl = utilization_timeline(&records, 60.0);
    assert_eq!(tl.lanes.len(), WORKERS, "one timeline lane per session");
    assert!(
        !tl.edges.is_empty(),
        "coalescing edges must reach the timeline"
    );
}
