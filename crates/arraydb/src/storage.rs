//! Physical storage: tiles as BLOBs in the base RDBMS (paper §2.6.3).
//!
//! Each inserted MDD object is partitioned by its tiling into tiles; every
//! tile is serialized and stored as one BLOB. Catalog rows (collections and
//! objects) are written through to heap tables so the whole database state
//! can be rebuilt from the page file. A tile may be *exported*: its BLOB is
//! dropped and its location marked tertiary — resolving such tiles is the
//! job of the HEAVEN layer above.

use crate::error::{ArrayDbError, Result};
use crate::schema::{Collection, CollectionId, ObjectMeta};
use heaven_array::{CellType, MDArray, Minterval, ObjectId, Tile, TileId, Tiling};
use heaven_obs::{Field, Histogram, MetricsRegistry, TraceBus};
use heaven_rdbms::{BTree, BlobStore, Database, Table};
use std::collections::HashMap;

/// Where a tile's payload currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileLocation {
    /// On secondary storage as a BLOB.
    Disk,
    /// Exported to tertiary storage (BLOB dropped).
    Exported,
}

/// The array DBMS: collections, objects, tiles-as-BLOBs.
#[derive(Debug)]
pub struct ArrayDb {
    db: Database,
    blobs: BlobStore,
    /// tile id → blob id (only for tiles on disk).
    tile_dir: BTree,
    coll_table: Table,
    obj_table: Table,
    collections: HashMap<String, Collection>,
    objects: HashMap<ObjectId, ObjectMeta>,
    tile_loc: HashMap<TileId, TileLocation>,
    next_collection: CollectionId,
    next_oid: ObjectId,
    next_tile: TileId,
    /// Per-tile disk-read duration distribution (simulated seconds).
    tile_read_hist: Histogram,
}

impl ArrayDb {
    /// Create a fresh array database on `db`.
    pub fn create(mut db: Database) -> Result<ArrayDb> {
        let blobs = BlobStore::create(&mut db)?;
        let tile_dir = BTree::create(&mut db)?;
        let coll_table = Table::create(&mut db)?;
        let obj_table = Table::create(&mut db)?;
        Ok(ArrayDb {
            db,
            blobs,
            tile_dir,
            coll_table,
            obj_table,
            collections: HashMap::new(),
            objects: HashMap::new(),
            tile_loc: HashMap::new(),
            next_collection: 1,
            next_oid: 1,
            next_tile: 1,
            tile_read_hist: MetricsRegistry::new().histogram("arraydb.tile_read_hist_s"),
        })
    }

    /// Attach the array DBMS (and its base RDBMS) to a shared metrics
    /// registry; observations accumulated so far carry over.
    pub fn attach_obs(&mut self, registry: &MetricsRegistry) {
        self.db.attach_obs(registry);
        let next = registry.histogram("arraydb.tile_read_hist_s");
        next.merge_from(&self.tile_read_hist);
        self.tile_read_hist = next;
    }

    /// Attach the shared trace bus (tile-read events here, transaction
    /// events in the base RDBMS).
    pub fn attach_trace(&mut self, bus: TraceBus) {
        self.db.attach_trace(bus);
    }

    /// Create on a default in-memory test database.
    pub fn for_tests() -> ArrayDb {
        ArrayDb::create(Database::for_tests()).expect("fresh db")
    }

    /// The underlying storage manager.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying storage manager.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    // -- collections ----------------------------------------------------------

    /// Create a collection.
    pub fn create_collection(
        &mut self,
        name: &str,
        cell_type: CellType,
        dim: usize,
    ) -> Result<CollectionId> {
        if self.collections.contains_key(name) {
            return Err(ArrayDbError::CollectionExists(name.to_string()));
        }
        let id = self.next_collection;
        self.next_collection += 1;
        let coll = Collection {
            id,
            name: name.to_string(),
            cell_type,
            dim,
            objects: Vec::new(),
        };
        let row = encode_collection_row(&coll);
        self.coll_table.insert(&mut self.db, &row)?;
        self.collections.insert(name.to_string(), coll);
        Ok(id)
    }

    /// Look up a collection by name.
    pub fn collection(&self, name: &str) -> Result<&Collection> {
        self.collections
            .get(name)
            .ok_or_else(|| ArrayDbError::NoSuchCollection(name.to_string()))
    }

    /// Names of all collections.
    pub fn collection_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.collections.keys().cloned().collect();
        v.sort();
        v
    }

    // -- objects --------------------------------------------------------------

    /// Insert an MDD object into a collection, tiling it with `tiling`.
    /// Runs in a transaction; returns the new object id.
    pub fn insert_object(
        &mut self,
        collection: &str,
        array: &MDArray,
        tiling: Tiling,
    ) -> Result<ObjectId> {
        let (coll_id, coll_ty) = {
            let c = self.collection(collection)?;
            (c.id, c.cell_type)
        };
        if coll_ty != array.cell_type() {
            return Err(ArrayDbError::WrongCellType {
                collection: collection.to_string(),
                expected: coll_ty.name().to_string(),
                got: array.cell_type().name().to_string(),
            });
        }
        let oid = self.next_oid;
        self.next_oid += 1;
        let tile_domains = tiling.tile_domains(array.domain(), array.cell_type())?;
        let first_tile = self.next_tile;
        self.next_tile += tile_domains.len() as u64;

        self.db.begin()?;
        let mut tiles = Vec::with_capacity(tile_domains.len());
        for (i, dom) in tile_domains.iter().enumerate() {
            let tile_id = first_tile + i as u64;
            let payload = array.extract(dom)?;
            let tile = Tile::new(tile_id, oid, payload);
            let blob = self.blobs.put(&mut self.db, &tile.encode())?;
            self.tile_dir.insert(&mut self.db, tile_id, blob)?;
            self.tile_loc.insert(tile_id, TileLocation::Disk);
            tiles.push((dom.clone(), tile_id));
        }
        let meta = ObjectMeta {
            oid,
            collection: coll_id,
            domain: array.domain().clone(),
            cell_type: array.cell_type(),
            tiling,
            tiles,
        };
        let row = encode_object_row(&meta, first_tile);
        self.obj_table.insert(&mut self.db, &row)?;
        self.db.commit()?;

        self.collections
            .get_mut(collection)
            .expect("checked above")
            .objects
            .push(oid);
        self.objects.insert(oid, meta);
        Ok(oid)
    }

    /// Insert an MDD object *streamed*: instead of a materialized array,
    /// `produce` is called once per tile domain (in grid order) and returns
    /// that tile's payload. This is how HPC producers feed results into the
    /// DBMS without ever holding the whole object in memory (paper
    /// Fig. 1.3, "HPC Datenerzeuger → Datenimport").
    pub fn insert_object_streamed<F>(
        &mut self,
        collection: &str,
        domain: &Minterval,
        tiling: Tiling,
        mut produce: F,
    ) -> Result<ObjectId>
    where
        F: FnMut(&Minterval) -> MDArray,
    {
        let (coll_id, cell_type) = {
            let c = self.collection(collection)?;
            (c.id, c.cell_type)
        };
        let oid = self.next_oid;
        self.next_oid += 1;
        let tile_domains = tiling.tile_domains(domain, cell_type)?;
        let first_tile = self.next_tile;
        self.next_tile += tile_domains.len() as u64;

        self.db.begin()?;
        let mut tiles = Vec::with_capacity(tile_domains.len());
        // Roll back the in-memory tile-location entries alongside the
        // transaction if a produced tile is invalid.
        let rollback = |adb: &mut ArrayDb, upto: u64| -> Result<()> {
            adb.db.abort()?;
            for t in first_tile..upto {
                adb.tile_loc.remove(&t);
            }
            Ok(())
        };
        for (i, dom) in tile_domains.iter().enumerate() {
            let tile_id = first_tile + i as u64;
            let payload = produce(dom);
            if payload.domain() != dom {
                rollback(self, tile_id)?;
                return Err(ArrayDbError::Semantic(format!(
                    "streamed tile covers {}, expected {dom}",
                    payload.domain()
                )));
            }
            if payload.cell_type() != cell_type {
                rollback(self, tile_id)?;
                return Err(ArrayDbError::WrongCellType {
                    collection: collection.to_string(),
                    expected: cell_type.name().to_string(),
                    got: payload.cell_type().name().to_string(),
                });
            }
            let tile = Tile::new(tile_id, oid, payload);
            let blob = self.blobs.put(&mut self.db, &tile.encode())?;
            self.tile_dir.insert(&mut self.db, tile_id, blob)?;
            self.tile_loc.insert(tile_id, TileLocation::Disk);
            tiles.push((dom.clone(), tile_id));
        }
        let meta = ObjectMeta {
            oid,
            collection: coll_id,
            domain: domain.clone(),
            cell_type,
            tiling,
            tiles,
        };
        let row = encode_object_row(&meta, first_tile);
        self.obj_table.insert(&mut self.db, &row)?;
        self.db.commit()?;

        self.collections
            .get_mut(collection)
            .expect("checked above")
            .objects
            .push(oid);
        self.objects.insert(oid, meta);
        Ok(oid)
    }

    /// Metadata of an object.
    pub fn object(&self, oid: ObjectId) -> Result<&ObjectMeta> {
        self.objects
            .get(&oid)
            .ok_or(ArrayDbError::NoSuchObject(oid))
    }

    /// All object ids, ascending.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.objects.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Where a tile currently lives.
    pub fn tile_location(&self, tile: TileId) -> Result<TileLocation> {
        self.tile_loc
            .get(&tile)
            .copied()
            .ok_or(ArrayDbError::NoSuchTile(tile))
    }

    // -- tile I/O ---------------------------------------------------------------

    /// Read a tile from disk. Fails with [`ArrayDbError::TileExported`] when
    /// the tile has been moved to tertiary storage.
    pub fn read_tile(&mut self, tile: TileId) -> Result<Tile> {
        match self.tile_location(tile)? {
            TileLocation::Disk => {}
            TileLocation::Exported => return Err(ArrayDbError::TileExported(tile)),
        }
        let t0 = self.db.clock().now_s();
        let blob = self
            .tile_dir
            .get(&mut self.db, tile)?
            .ok_or(ArrayDbError::NoSuchTile(tile))?;
        let bytes = bytes::Bytes::from(self.blobs.get(&mut self.db, blob)?);
        let (t, _) = Tile::decode_shared(&bytes, 0)?;
        let dt = self.db.clock().now_s() - t0;
        self.tile_read_hist.observe(dt);
        self.db.trace().event(
            "arraydb.tile_read",
            self.db.clock().now_s(),
            &[
                ("tile", Field::U64(tile)),
                ("bytes", Field::U64(bytes.len() as u64)),
                ("cost_s", Field::F64(dt)),
            ],
        );
        Ok(t)
    }

    /// Mark a tile as exported: drop its BLOB, record tertiary location.
    pub fn mark_exported(&mut self, tile: TileId) -> Result<()> {
        match self.tile_location(tile)? {
            TileLocation::Exported => return Ok(()),
            TileLocation::Disk => {}
        }
        if let Some(blob) = self.tile_dir.get(&mut self.db, tile)? {
            self.blobs.delete(&mut self.db, blob)?;
            self.tile_dir.remove(&mut self.db, tile)?;
        }
        self.tile_loc.insert(tile, TileLocation::Exported);
        Ok(())
    }

    /// (Re-)store a tile's payload on disk: used for re-import after
    /// archival and for updates of archived data (paper §3.6). Any previous
    /// BLOB of the tile is freed first.
    pub fn restore_tile(&mut self, tile: &Tile) -> Result<()> {
        if let Some(old) = self.tile_dir.get(&mut self.db, tile.id)? {
            self.blobs.delete(&mut self.db, old)?;
            self.tile_dir.remove(&mut self.db, tile.id)?;
        }
        let blob = self.blobs.put(&mut self.db, &tile.encode())?;
        self.tile_dir.insert(&mut self.db, tile.id, blob)?;
        self.tile_loc.insert(tile.id, TileLocation::Disk);
        Ok(())
    }

    /// Assemble the sub-array of `oid` covering `region` from on-disk tiles.
    pub fn read_subarray(&mut self, oid: ObjectId, region: &Minterval) -> Result<MDArray> {
        let (target, tile_ids, cell_type) = {
            let meta = self.object(oid)?;
            let target = meta
                .domain
                .intersection(region)
                .ok_or(ArrayDbError::Semantic(format!(
                    "region {region} outside object domain {}",
                    meta.domain
                )))?;
            (
                target.clone(),
                meta.tiles_intersecting(&target),
                meta.cell_type,
            )
        };
        let mut out = MDArray::zeros(target, cell_type);
        for tid in tile_ids {
            let tile = self.read_tile(tid)?;
            out.patch(&tile.data)?;
        }
        Ok(out)
    }

    /// Delete an object: all its on-disk tiles, its catalog entries, and its
    /// membership. Exported tiles are forgotten (the HEAVEN layer reclaims
    /// tertiary space).
    pub fn delete_object(&mut self, oid: ObjectId) -> Result<()> {
        let meta = self
            .objects
            .remove(&oid)
            .ok_or(ArrayDbError::NoSuchObject(oid))?;
        self.db.begin()?;
        for (_, tid) in &meta.tiles {
            if self.tile_loc.remove(tid) == Some(TileLocation::Disk) {
                if let Some(blob) = self.tile_dir.get(&mut self.db, *tid)? {
                    self.blobs.delete(&mut self.db, blob)?;
                    self.tile_dir.remove(&mut self.db, *tid)?;
                }
            }
        }
        // Remove the catalog row.
        let rows = self.obj_table.scan(&mut self.db)?;
        for (rid, row) in rows {
            if decode_object_oid(&row) == oid {
                self.obj_table.delete(&mut self.db, rid)?;
            }
        }
        self.db.commit()?;
        for c in self.collections.values_mut() {
            c.objects.retain(|&o| o != oid);
        }
        Ok(())
    }

    /// Rebuild the in-memory catalogs from the persisted heap tables.
    /// Verifies that catalog persistence is complete (used after recovery).
    pub fn rebuild_catalogs(&mut self) -> Result<()> {
        let mut collections = HashMap::new();
        let mut by_id: HashMap<CollectionId, String> = HashMap::new();
        for (_, row) in self.coll_table.scan(&mut self.db)? {
            let c = decode_collection_row(&row)?;
            by_id.insert(c.id, c.name.clone());
            collections.insert(c.name.clone(), c);
        }
        let mut objects = HashMap::new();
        let mut tile_loc = HashMap::new();
        let mut max_tile = 0u64;
        let mut max_oid = 0u64;
        for (_, row) in self.obj_table.scan(&mut self.db)? {
            let (meta, first_tile) = decode_object_row(&row)?;
            for (i, (_, tid)) in meta.tiles.iter().enumerate() {
                debug_assert_eq!(*tid, first_tile + i as u64);
                // Location: on disk iff the tile directory still maps it.
                let loc = if self.tile_dir.get(&mut self.db, *tid)?.is_some() {
                    TileLocation::Disk
                } else {
                    TileLocation::Exported
                };
                tile_loc.insert(*tid, loc);
                max_tile = max_tile.max(*tid);
            }
            max_oid = max_oid.max(meta.oid);
            if let Some(name) = by_id.get(&meta.collection) {
                collections
                    .get_mut(name)
                    .expect("by_id built from collections")
                    .objects
                    .push(meta.oid);
            }
            objects.insert(meta.oid, meta);
        }
        for c in collections.values_mut() {
            c.objects.sort_unstable();
        }
        self.next_collection = collections.values().map(|c| c.id).max().unwrap_or(0) + 1;
        self.next_oid = max_oid + 1;
        self.next_tile = max_tile + 1;
        self.collections = collections;
        self.objects = objects;
        self.tile_loc = tile_loc;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// catalog row codecs
// ---------------------------------------------------------------------------

fn encode_collection_row(c: &Collection) -> Vec<u8> {
    let mut row = Vec::with_capacity(16 + c.name.len());
    row.extend_from_slice(&c.id.to_le_bytes());
    row.push(c.cell_type.tag());
    row.push(c.dim as u8);
    row.extend_from_slice(&(c.name.len() as u16).to_le_bytes());
    row.extend_from_slice(c.name.as_bytes());
    row
}

fn decode_collection_row(row: &[u8]) -> Result<Collection> {
    let bad = || ArrayDbError::Semantic("corrupt collection row".into());
    if row.len() < 12 {
        return Err(bad());
    }
    let id = u64::from_le_bytes(row[0..8].try_into().unwrap());
    let cell_type = CellType::from_tag(row[8]).ok_or_else(bad)?;
    let dim = row[9] as usize;
    let nlen = u16::from_le_bytes(row[10..12].try_into().unwrap()) as usize;
    if row.len() < 12 + nlen {
        return Err(bad());
    }
    let name = String::from_utf8(row[12..12 + nlen].to_vec()).map_err(|_| bad())?;
    Ok(Collection {
        id,
        name,
        cell_type,
        dim,
        objects: Vec::new(),
    })
}

fn encode_object_row(meta: &ObjectMeta, first_tile: TileId) -> Vec<u8> {
    let d = meta.domain.dim();
    let mut row = Vec::with_capacity(40 + 16 * d);
    row.extend_from_slice(&meta.oid.to_le_bytes());
    row.extend_from_slice(&meta.collection.to_le_bytes());
    row.push(meta.cell_type.tag());
    row.push(d as u8);
    row.extend_from_slice(&first_tile.to_le_bytes());
    // tiling
    match &meta.tiling {
        Tiling::Regular { tile_shape } => {
            row.push(0);
            for e in tile_shape {
                row.extend_from_slice(&e.to_le_bytes());
            }
        }
        Tiling::Directional {
            axis,
            base_edge,
            factor,
        } => {
            row.push(1);
            row.extend_from_slice(&(*axis as u64).to_le_bytes());
            row.extend_from_slice(&base_edge.to_le_bytes());
            row.extend_from_slice(&factor.to_le_bytes());
        }
        Tiling::SizeBounded { max_bytes } => {
            row.push(2);
            row.extend_from_slice(&max_bytes.to_le_bytes());
        }
    }
    for ax in meta.domain.axes() {
        row.extend_from_slice(&ax.lo.to_le_bytes());
        row.extend_from_slice(&ax.hi.to_le_bytes());
    }
    row
}

fn decode_object_oid(row: &[u8]) -> ObjectId {
    u64::from_le_bytes(row[0..8].try_into().unwrap())
}

fn decode_object_row(row: &[u8]) -> Result<(ObjectMeta, TileId)> {
    let bad = || ArrayDbError::Semantic("corrupt object row".into());
    let mut off = 0usize;
    let mut take = |n: usize| -> Result<&[u8]> {
        if row.len() < off + n {
            return Err(bad());
        }
        let s = &row[off..off + n];
        off += n;
        Ok(s)
    };
    let oid = u64::from_le_bytes(take(8)?.try_into().unwrap());
    let collection = u64::from_le_bytes(take(8)?.try_into().unwrap());
    let cell_type = CellType::from_tag(take(1)?[0]).ok_or_else(bad)?;
    let d = take(1)?[0] as usize;
    let first_tile = u64::from_le_bytes(take(8)?.try_into().unwrap());
    let tiling = match take(1)?[0] {
        0 => {
            let mut shape = Vec::with_capacity(d);
            for _ in 0..d {
                shape.push(u64::from_le_bytes(take(8)?.try_into().unwrap()));
            }
            Tiling::Regular { tile_shape: shape }
        }
        1 => {
            let axis = u64::from_le_bytes(take(8)?.try_into().unwrap()) as usize;
            let base_edge = u64::from_le_bytes(take(8)?.try_into().unwrap());
            let factor = u64::from_le_bytes(take(8)?.try_into().unwrap());
            Tiling::Directional {
                axis,
                base_edge,
                factor,
            }
        }
        2 => {
            let max_bytes = u64::from_le_bytes(take(8)?.try_into().unwrap());
            Tiling::SizeBounded { max_bytes }
        }
        _ => return Err(bad()),
    };
    let mut bounds = Vec::with_capacity(d);
    for _ in 0..d {
        let lo = i64::from_le_bytes(take(8)?.try_into().unwrap());
        let hi = i64::from_le_bytes(take(8)?.try_into().unwrap());
        bounds.push((lo, hi));
    }
    let domain = Minterval::new(&bounds)?;
    let tile_domains = tiling.tile_domains(&domain, cell_type)?;
    let tiles: Vec<(Minterval, TileId)> = tile_domains.into_iter().zip(first_tile..).collect();
    Ok((
        ObjectMeta {
            oid,
            collection,
            domain,
            cell_type,
            tiling,
            tiles,
        },
        first_tile,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use heaven_array::Point;

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    fn ramp(dom: Minterval) -> MDArray {
        MDArray::generate(dom, CellType::I32, |p| {
            p.0.iter().fold(0i64, |a, &c| a * 100 + c) as f64
        })
    }

    fn db_with_object() -> (ArrayDb, ObjectId) {
        let mut adb = ArrayDb::for_tests();
        adb.create_collection("temps", CellType::I32, 2).unwrap();
        let arr = ramp(mi(&[(0, 29), (0, 29)]));
        let oid = adb
            .insert_object(
                "temps",
                &arr,
                Tiling::Regular {
                    tile_shape: vec![10, 10],
                },
            )
            .unwrap();
        (adb, oid)
    }

    #[test]
    fn insert_creates_tiles_as_blobs() {
        let (adb, oid) = db_with_object();
        let meta = adb.object(oid).unwrap();
        assert_eq!(meta.tiles.len(), 9);
        for (_, tid) in &meta.tiles {
            assert_eq!(adb.tile_location(*tid).unwrap(), TileLocation::Disk);
        }
    }

    #[test]
    fn read_tile_roundtrip() {
        let (mut adb, oid) = db_with_object();
        let tid = adb.object(oid).unwrap().tiles[4].1;
        let tile = adb.read_tile(tid).unwrap();
        assert_eq!(tile.object, oid);
        assert_eq!(tile.domain(), &mi(&[(10, 19), (10, 19)]));
        assert_eq!(
            tile.data.get_f64(&Point::new(vec![12, 15])).unwrap(),
            1215.0
        );
    }

    #[test]
    fn subarray_assembles_across_tiles() {
        let (mut adb, oid) = db_with_object();
        let region = mi(&[(5, 24), (5, 24)]);
        let sub = adb.read_subarray(oid, &region).unwrap();
        assert_eq!(sub.domain(), &region);
        for p in [
            Point::new(vec![5, 5]),
            Point::new(vec![15, 20]),
            Point::new(vec![24, 24]),
        ] {
            assert_eq!(
                sub.get_f64(&p).unwrap(),
                (p.coord(0) * 100 + p.coord(1)) as f64
            );
        }
    }

    #[test]
    fn wrong_cell_type_rejected() {
        let mut adb = ArrayDb::for_tests();
        adb.create_collection("c", CellType::F32, 2).unwrap();
        let arr = ramp(mi(&[(0, 9), (0, 9)])); // I32
        assert!(matches!(
            adb.insert_object(
                "c",
                &arr,
                Tiling::Regular {
                    tile_shape: vec![5, 5]
                }
            ),
            Err(ArrayDbError::WrongCellType { .. })
        ));
    }

    #[test]
    fn exported_tiles_are_not_readable_from_disk() {
        let (mut adb, oid) = db_with_object();
        let tid = adb.object(oid).unwrap().tiles[0].1;
        adb.mark_exported(tid).unwrap();
        assert!(matches!(
            adb.read_tile(tid),
            Err(ArrayDbError::TileExported(_))
        ));
        assert_eq!(adb.tile_location(tid).unwrap(), TileLocation::Exported);
        // subarray touching it fails too
        assert!(adb.read_subarray(oid, &mi(&[(0, 5), (0, 5)])).is_err());
        // but other regions still work
        assert!(adb.read_subarray(oid, &mi(&[(20, 29), (20, 29)])).is_ok());
    }

    #[test]
    fn restore_returns_tile_to_disk() {
        let (mut adb, oid) = db_with_object();
        let tid = adb.object(oid).unwrap().tiles[0].1;
        let original = adb.read_tile(tid).unwrap();
        adb.mark_exported(tid).unwrap();
        adb.restore_tile(&original).unwrap();
        let back = adb.read_tile(tid).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn delete_object_frees_everything() {
        let (mut adb, oid) = db_with_object();
        adb.delete_object(oid).unwrap();
        assert!(matches!(
            adb.object(oid),
            Err(ArrayDbError::NoSuchObject(_))
        ));
        assert!(adb.collection("temps").unwrap().objects.is_empty());
        assert!(adb.delete_object(oid).is_err());
    }

    #[test]
    fn catalogs_rebuild_from_tables() {
        let (mut adb, oid) = db_with_object();
        let before_obj = adb.object(oid).unwrap().clone();
        let before_colls = adb.collection_names();
        // wipe in-memory state
        adb.collections.clear();
        adb.objects.clear();
        adb.tile_loc.clear();
        adb.rebuild_catalogs().unwrap();
        assert_eq!(adb.collection_names(), before_colls);
        assert_eq!(adb.object(oid).unwrap(), &before_obj);
        assert_eq!(adb.collection("temps").unwrap().objects, vec![oid]);
        // tiles readable again
        let tid = before_obj.tiles[0].1;
        assert!(adb.read_tile(tid).is_ok());
    }

    #[test]
    fn rebuild_preserves_exported_locations() {
        let (mut adb, oid) = db_with_object();
        let tid = adb.object(oid).unwrap().tiles[2].1;
        adb.mark_exported(tid).unwrap();
        adb.rebuild_catalogs().unwrap();
        assert_eq!(adb.tile_location(tid).unwrap(), TileLocation::Exported);
        assert_eq!(adb.tile_location(tid + 1).unwrap(), TileLocation::Disk);
    }

    #[test]
    fn streamed_insert_equals_materialized_insert() {
        let mut adb = ArrayDb::for_tests();
        adb.create_collection("c", CellType::I32, 2).unwrap();
        let dom = mi(&[(0, 29), (0, 29)]);
        let arr = ramp(dom.clone());
        let tiling = Tiling::Regular {
            tile_shape: vec![10, 10],
        };
        let oid_m = adb.insert_object("c", &arr, tiling.clone()).unwrap();
        let mut produced = 0;
        let oid_s = adb
            .insert_object_streamed("c", &dom, tiling, |td| {
                produced += 1;
                arr.extract(td).unwrap()
            })
            .unwrap();
        assert_eq!(produced, 9, "one producer call per tile");
        let a = adb.read_subarray(oid_m, &dom).unwrap();
        let b = adb.read_subarray(oid_s, &dom).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn streamed_insert_validates_tiles() {
        let mut adb = ArrayDb::for_tests();
        adb.create_collection("c", CellType::I32, 2).unwrap();
        let dom = mi(&[(0, 19), (0, 19)]);
        let tiling = Tiling::Regular {
            tile_shape: vec![10, 10],
        };
        // wrong domain
        let r = adb.insert_object_streamed("c", &dom, tiling.clone(), |_| {
            MDArray::zeros(mi(&[(0, 4), (0, 4)]), CellType::I32)
        });
        assert!(matches!(r, Err(ArrayDbError::Semantic(_))));
        // wrong cell type
        let r = adb.insert_object_streamed("c", &dom, tiling, |td| {
            MDArray::zeros(td.clone(), CellType::F32)
        });
        assert!(matches!(r, Err(ArrayDbError::WrongCellType { .. })));
        // failed inserts leave no objects behind
        assert!(adb.collection("c").unwrap().objects.is_empty());
    }

    #[test]
    fn duplicate_collection_rejected() {
        let mut adb = ArrayDb::for_tests();
        adb.create_collection("x", CellType::U8, 1).unwrap();
        assert!(matches!(
            adb.create_collection("x", CellType::U8, 1),
            Err(ArrayDbError::CollectionExists(_))
        ));
    }
}
