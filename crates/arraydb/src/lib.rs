#![warn(missing_docs)]
//! # heaven-arraydb — the multidimensional array DBMS
//!
//! A from-scratch reproduction of the RasDaMan architecture HEAVEN builds
//! on (paper §2.6): collections of multidimensional objects, tiles stored
//! as BLOBs in a base RDBMS, a multidimensional tile index, and a
//! declarative query language (RasQL subset) with trims, slices, induced
//! operations, condensers and the Object-Framing extension.
//!
//! The [`TileProvider`] trait is the seam through which HEAVEN extends the
//! executor across the full storage hierarchy.

pub mod error;
pub mod provider;
pub mod ql;
pub mod schema;
pub mod storage;

pub use error::{ArrayDbError, Result};
pub use provider::TileProvider;
pub use ql::{run, QueryResult, Value};
pub use schema::{Collection, CollectionId, ObjectMeta};
pub use storage::{ArrayDb, TileLocation};
