//! Tokenizer for the RasQL subset.

use crate::error::{ArrayDbError, Result};

/// A lexical token with its byte position.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `*` (multiplication, or a wildcard bound inside brackets)
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `\` (frame difference)
    Backslash,
    /// `|` (frame union)
    Pipe,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

/// A token plus its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// Byte offset in the query text.
    pub pos: usize,
}

/// Tokenize query text.
pub fn lex(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                out.push(Spanned {
                    tok: Token::LParen,
                    pos,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    tok: Token::RParen,
                    pos,
                });
                i += 1;
            }
            '[' => {
                out.push(Spanned {
                    tok: Token::LBracket,
                    pos,
                });
                i += 1;
            }
            ']' => {
                out.push(Spanned {
                    tok: Token::RBracket,
                    pos,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    tok: Token::Comma,
                    pos,
                });
                i += 1;
            }
            ':' => {
                out.push(Spanned {
                    tok: Token::Colon,
                    pos,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    tok: Token::Star,
                    pos,
                });
                i += 1;
            }
            '+' => {
                out.push(Spanned {
                    tok: Token::Plus,
                    pos,
                });
                i += 1;
            }
            '-' => {
                out.push(Spanned {
                    tok: Token::Minus,
                    pos,
                });
                i += 1;
            }
            '/' => {
                out.push(Spanned {
                    tok: Token::Slash,
                    pos,
                });
                i += 1;
            }
            '\\' => {
                out.push(Spanned {
                    tok: Token::Backslash,
                    pos,
                });
                i += 1;
            }
            '|' => {
                out.push(Spanned {
                    tok: Token::Pipe,
                    pos,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        tok: Token::Le,
                        pos,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        tok: Token::Lt,
                        pos,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        tok: Token::Ge,
                        pos,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        tok: Token::Gt,
                        pos,
                    });
                    i += 1;
                }
            }
            '=' => {
                out.push(Spanned {
                    tok: Token::Eq,
                    pos,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        tok: Token::Ne,
                        pos,
                    });
                    i += 2;
                } else {
                    return Err(ArrayDbError::Syntax {
                        pos,
                        msg: "expected '=' after '!'".into(),
                    });
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let tok = if is_float {
                    Token::Float(text.parse().map_err(|_| ArrayDbError::Syntax {
                        pos: start,
                        msg: format!("bad float literal {text}"),
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| ArrayDbError::Syntax {
                        pos: start,
                        msg: format!("bad integer literal {text}"),
                    })?)
                };
                out.push(Spanned { tok, pos: start });
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Token::Ident(input[start..i].to_string()),
                    pos: start,
                });
            }
            _ => {
                return Err(ArrayDbError::Syntax {
                    pos,
                    msg: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        lex(s).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_a_typical_query() {
        let t = toks("select avg_cells(t[0:99, 5]) from temps as t");
        assert_eq!(t[0], Token::Ident("select".into()));
        assert!(t.contains(&Token::LBracket));
        assert!(t.contains(&Token::Colon));
        assert!(t.contains(&Token::Int(99)));
        assert_eq!(*t.last().unwrap(), Token::Ident("t".into()));
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks("a <= b != c >= d < e > f = g"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Ne,
                Token::Ident("c".into()),
                Token::Ge,
                Token::Ident("d".into()),
                Token::Lt,
                Token::Ident("e".into()),
                Token::Gt,
                Token::Ident("f".into()),
                Token::Eq,
                Token::Ident("g".into()),
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(toks("42 3.25"), vec![Token::Int(42), Token::Float(3.25)]);
    }

    #[test]
    fn lexes_frame_operators() {
        assert_eq!(
            toks("[0:1 | 2:3] [4:5 \\ 6:7]")
                .iter()
                .filter(|t| matches!(t, Token::Pipe | Token::Backslash))
                .count(),
            2
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a § b").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn positions_point_into_source() {
        let s = lex("ab   cd").unwrap();
        assert_eq!(s[0].pos, 0);
        assert_eq!(s[1].pos, 5);
    }
}
