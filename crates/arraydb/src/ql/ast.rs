//! Abstract syntax of the RasQL subset (with the Object-Framing extension).
//!
//! ```text
//! query    := SELECT expr FROM ident [AS ident] [WHERE oidfilter]
//! oidfilter:= OID '(' ident ')' ( '=' int | IN '(' int (',' int)* ')' )
//! expr     := cmp
//! cmp      := add ( ('<'|'<='|'>'|'>='|'='|'!=') add )?
//! add      := mul ( ('+'|'-') mul )*
//! mul      := unary ( ('*'|'/') unary )*
//! unary    := '-' unary | postfix
//! postfix  := primary ( '[' frame ']' )*
//! primary  := number | ident | func '(' expr ')' | SCALE '(' expr ',' int ')'
//!           | '(' expr ')'
//! frame    := boxsel ( '|' boxsel )* | boxsel '\' boxsel   -- framing ext.
//! boxsel   := rangesel ( ',' rangesel )*
//! rangesel := bound ':' bound | int            -- int alone slices
//! bound    := int | '*'
//! ```

use heaven_array::{BinaryOp, Condenser, UnaryOp};

/// One per-axis selector inside a trim/slice bracket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeSel {
    /// `lo:hi`, with `None` meaning `*` (the object's own bound).
    Range(Option<i64>, Option<i64>),
    /// A single position: slices the axis away.
    At(i64),
}

/// One box of selectors, e.g. `0:9,*:*,5`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoxSel(pub Vec<RangeSel>);

/// The bracket contents: a single box, a union of boxes (`|`), or a
/// difference (`\`) — the Object-Framing extension (paper §3.8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameSpec {
    /// Plain trim/slice.
    Single(BoxSel),
    /// Union frame: `[b1 | b2 | ...]`.
    Union(Vec<BoxSel>),
    /// Difference frame: `[outer \ inner]`.
    Diff(BoxSel, BoxSel),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The collection iteration variable.
    Var(String),
    /// A numeric literal.
    Num(f64),
    /// Trim/slice/frame selection.
    Select(Box<Expr>, FrameSpec),
    /// Unary induced operation (neg, abs, sqrt, casts).
    Unary(UnaryOp, Box<Expr>),
    /// Binary induced operation (arith/comparison), array or scalar operands.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Condenser (aggregation) over an array expression.
    Condense(Condenser, Box<Expr>),
    /// Downsample by a uniform integer factor: `scale(expr, k)`.
    Scale(Box<Expr>, u64),
}

/// An object filter from the WHERE clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OidFilter {
    /// `where oid(v) = N`
    Eq(u64),
    /// `where oid(v) in (N, M, ...)`
    In(Vec<u64>),
}

impl OidFilter {
    /// Whether an object id passes the filter.
    pub fn accepts(&self, oid: u64) -> bool {
        match self {
            OidFilter::Eq(n) => *n == oid,
            OidFilter::In(ns) => ns.contains(&oid),
        }
    }
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The selected expression.
    pub target: Expr,
    /// Collection name.
    pub collection: String,
    /// Iteration-variable name (alias; defaults to the collection name).
    pub alias: String,
    /// Optional object filter (`WHERE oid(v) ...`).
    pub filter: Option<OidFilter>,
}

impl Expr {
    /// Whether the expression contains the iteration variable (queries whose
    /// target is constant are rejected as semantic errors).
    pub fn uses_var(&self, name: &str) -> bool {
        match self {
            Expr::Var(v) => v == name,
            Expr::Num(_) => false,
            Expr::Select(e, _) | Expr::Unary(_, e) | Expr::Condense(_, e) | Expr::Scale(e, _) => {
                e.uses_var(name)
            }
            Expr::Binary(_, l, r) => l.uses_var(name) || r.uses_var(name),
        }
    }
}
