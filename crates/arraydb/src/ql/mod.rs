//! The RasQL-subset query language: AST, lexer, parser, executor.
//!
//! Covers the operations the paper's workloads use (§2.6.5–§2.6.6): trims,
//! slices, induced arithmetic and comparisons, condensers — plus the
//! Object-Framing extension (§3.8): union (`|`) and difference (`\`)
//! frames inside selection brackets.

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{BoxSel, Expr, FrameSpec, OidFilter, Query, RangeSel};
pub use exec::{execute, run, QueryResult, Value};
pub use parser::{parse_expr, parse_query};
