//! Recursive-descent parser for the RasQL subset.

use super::ast::{BoxSel, Expr, FrameSpec, OidFilter, Query, RangeSel};
use super::lexer::{lex, Spanned, Token};
use crate::error::{ArrayDbError, Result};
use heaven_array::{BinaryOp, CellType, Condenser, UnaryOp};

/// Parse a full `SELECT ... FROM ...` query.
pub fn parse_query(input: &str) -> Result<Query> {
    let toks = lex(input)?;
    let mut p = Parser { toks, i: 0 };
    p.expect_keyword("select")?;
    let target = p.expr()?;
    p.expect_keyword("from")?;
    let collection = p.expect_ident()?;
    let alias = if p.peek_keyword("as") {
        p.advance();
        p.expect_ident()?
    } else {
        collection.clone()
    };
    let filter = if p.peek_keyword("where") {
        p.advance();
        Some(p.oid_filter(&alias)?)
    } else {
        None
    };
    p.expect_end()?;
    let q = Query {
        target,
        collection,
        alias,
        filter,
    };
    if !q.target.uses_var(&q.alias) {
        return Err(ArrayDbError::Semantic(format!(
            "query target never uses the iteration variable '{}'",
            q.alias
        )));
    }
    Ok(q)
}

/// Parse a bare expression (used by tests and by the framing helpers).
pub fn parse_expr(input: &str) -> Result<Expr> {
    let toks = lex(input)?;
    let mut p = Parser { toks, i: 0 };
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.i).map(|s| &s.tok)
    }

    fn pos(&self) -> usize {
        self.toks
            .get(self.i)
            .map(|s| s.pos)
            .unwrap_or_else(|| self.toks.last().map(|s| s.pos + 1).unwrap_or(0))
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.toks.get(self.i).map(|s| s.tok.clone());
        self.i += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(ArrayDbError::Syntax {
            pos: self.pos(),
            msg: msg.into(),
        })
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.peek_keyword(kw) {
            self.advance();
            Ok(())
        } else {
            self.err(format!("expected keyword '{kw}'"))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.i -= 1;
                self.err("expected identifier")
            }
        }
    }

    fn expect_tok(&mut self, want: Token, what: &str) -> Result<()> {
        if self.peek() == Some(&want) {
            self.advance();
            Ok(())
        } else {
            self.err(format!("expected {what}"))
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        if self.peek().is_none() {
            Ok(())
        } else {
            self.err("trailing input after query")
        }
    }

    // expr := cmp
    fn expr(&mut self) -> Result<Expr> {
        self.cmp()
    }

    fn cmp(&mut self) -> Result<Expr> {
        let left = self.add()?;
        let op = match self.peek() {
            Some(Token::Lt) => BinaryOp::Lt,
            Some(Token::Le) => BinaryOp::Le,
            Some(Token::Gt) => BinaryOp::Gt,
            Some(Token::Ge) => BinaryOp::Ge,
            Some(Token::Eq) => BinaryOp::Eq,
            Some(Token::Ne) => BinaryOp::Ne,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.add()?;
        Ok(Expr::Binary(op, Box::new(left), Box::new(right)))
    }

    fn add(&mut self) -> Result<Expr> {
        let mut e = self.mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => return Ok(e),
            };
            self.advance();
            let rhs = self.mul()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
    }

    fn mul(&mut self) -> Result<Expr> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                _ => return Ok(e),
            };
            self.advance();
            let rhs = self.unary()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.peek() == Some(&Token::Minus) {
            self.advance();
            let inner = self.unary()?;
            return Ok(match inner {
                Expr::Num(n) => Expr::Num(-n),
                other => Expr::Unary(UnaryOp::Neg, Box::new(other)),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        while self.peek() == Some(&Token::LBracket) {
            self.advance();
            let frame = self.frame_spec()?;
            self.expect_tok(Token::RBracket, "']'")?;
            e = Expr::Select(Box::new(e), frame);
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.advance() {
            Some(Token::Int(n)) => Ok(Expr::Num(n as f64)),
            Some(Token::Float(x)) => Ok(Expr::Num(x)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect_tok(Token::RParen, "')'")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    self.advance();
                    let arg = self.expr()?;
                    if name.eq_ignore_ascii_case("scale") {
                        self.expect_tok(Token::Comma, "',' (scale takes a factor)")?;
                        let factor = match self.advance() {
                            Some(Token::Int(n)) if n > 0 => n as u64,
                            _ => {
                                self.i -= 1;
                                return self.err("expected positive scale factor");
                            }
                        };
                        self.expect_tok(Token::RParen, "')'")?;
                        return Ok(Expr::Scale(Box::new(arg), factor));
                    }
                    self.expect_tok(Token::RParen, "')'")?;
                    self.function(&name, arg)
                } else {
                    Ok(Expr::Var(name))
                }
            }
            _ => {
                self.i -= 1;
                self.err("expected expression")
            }
        }
    }

    fn function(&mut self, name: &str, arg: Expr) -> Result<Expr> {
        let lower = name.to_ascii_lowercase();
        if let Some(c) = Condenser::parse(&lower) {
            return Ok(Expr::Condense(c, Box::new(arg)));
        }
        let op = match lower.as_str() {
            "sqrt" => UnaryOp::Sqrt,
            "abs" => UnaryOp::Abs,
            _ => {
                if let Some(ty) = CellType::parse(&lower) {
                    UnaryOp::Cast(ty)
                } else {
                    return self.err(format!("unknown function '{name}'"));
                }
            }
        };
        Ok(Expr::Unary(op, Box::new(arg)))
    }

    /// `oidfilter := oid '(' alias ')' ('=' int | in '(' int, ... ')')`
    fn oid_filter(&mut self, alias: &str) -> Result<OidFilter> {
        self.expect_keyword("oid")?;
        self.expect_tok(Token::LParen, "'('")?;
        let var = self.expect_ident()?;
        if var != alias {
            return Err(ArrayDbError::Semantic(format!(
                "oid() takes the iteration variable '{alias}', got '{var}'"
            )));
        }
        self.expect_tok(Token::RParen, "')'")?;
        if self.peek() == Some(&Token::Eq) {
            self.advance();
            match self.advance() {
                Some(Token::Int(n)) if n >= 0 => Ok(OidFilter::Eq(n as u64)),
                _ => {
                    self.i -= 1;
                    self.err("expected object id")
                }
            }
        } else if self.peek_keyword("in") {
            self.advance();
            self.expect_tok(Token::LParen, "'('")?;
            let mut ids = Vec::new();
            loop {
                match self.advance() {
                    Some(Token::Int(n)) if n >= 0 => ids.push(n as u64),
                    _ => {
                        self.i -= 1;
                        return self.err("expected object id");
                    }
                }
                match self.advance() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    _ => {
                        self.i -= 1;
                        return self.err("expected ',' or ')'");
                    }
                }
            }
            Ok(OidFilter::In(ids))
        } else {
            self.err("expected '=' or 'in' after oid()")
        }
    }

    // frame := boxsel ('|' boxsel)*  |  boxsel '\' boxsel
    fn frame_spec(&mut self) -> Result<FrameSpec> {
        let first = self.box_sel()?;
        match self.peek() {
            Some(Token::Pipe) => {
                let mut boxes = vec![first];
                while self.peek() == Some(&Token::Pipe) {
                    self.advance();
                    boxes.push(self.box_sel()?);
                }
                Ok(FrameSpec::Union(boxes))
            }
            Some(Token::Backslash) => {
                self.advance();
                let inner = self.box_sel()?;
                Ok(FrameSpec::Diff(first, inner))
            }
            _ => Ok(FrameSpec::Single(first)),
        }
    }

    fn box_sel(&mut self) -> Result<BoxSel> {
        let mut sels = vec![self.range_sel()?];
        while self.peek() == Some(&Token::Comma) {
            self.advance();
            sels.push(self.range_sel()?);
        }
        Ok(BoxSel(sels))
    }

    fn range_sel(&mut self) -> Result<RangeSel> {
        let lo = self.bound()?;
        if self.peek() == Some(&Token::Colon) {
            self.advance();
            let hi = self.bound()?;
            Ok(RangeSel::Range(lo, hi))
        } else {
            match lo {
                Some(v) => Ok(RangeSel::At(v)),
                None => self.err("'*' alone cannot slice; use '*:*'"),
            }
        }
    }

    /// `bound := int | '-' int | '*'`; `None` = `*`.
    fn bound(&mut self) -> Result<Option<i64>> {
        match self.peek() {
            Some(Token::Star) => {
                self.advance();
                Ok(None)
            }
            Some(Token::Minus) => {
                self.advance();
                match self.advance() {
                    Some(Token::Int(n)) => Ok(Some(-n)),
                    _ => {
                        self.i -= 1;
                        self.err("expected integer after '-'")
                    }
                }
            }
            Some(Token::Int(_)) => {
                let Some(Token::Int(n)) = self.advance() else {
                    unreachable!()
                };
                Ok(Some(n))
            }
            _ => self.err("expected bound (integer or '*')"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_trim() {
        let q = parse_query("select t[0:9, 10:19] from temps as t").unwrap();
        assert_eq!(q.collection, "temps");
        assert_eq!(q.alias, "t");
        match q.target {
            Expr::Select(inner, FrameSpec::Single(BoxSel(sels))) => {
                assert_eq!(*inner, Expr::Var("t".into()));
                assert_eq!(
                    sels,
                    vec![
                        RangeSel::Range(Some(0), Some(9)),
                        RangeSel::Range(Some(10), Some(19))
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn alias_defaults_to_collection() {
        let q = parse_query("select temps[0:1,0:1] from temps").unwrap();
        assert_eq!(q.alias, "temps");
    }

    #[test]
    fn parses_slice_and_star() {
        let q = parse_query("select t[*:*, 5] from c as t").unwrap();
        match q.target {
            Expr::Select(_, FrameSpec::Single(BoxSel(sels))) => {
                assert_eq!(sels[0], RangeSel::Range(None, None));
                assert_eq!(sels[1], RangeSel::At(5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_condenser_and_arith() {
        let q = parse_query("select avg_cells(t[0:9,0:9]) * 2 + 1 from c as t").unwrap();
        match &q.target {
            Expr::Binary(BinaryOp::Add, l, r) => {
                assert_eq!(**r, Expr::Num(1.0));
                match &**l {
                    Expr::Binary(BinaryOp::Mul, c, two) => {
                        assert!(matches!(**c, Expr::Condense(Condenser::Avg, _)));
                        assert_eq!(**two, Expr::Num(2.0));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_union_frame() {
        let q = parse_query("select t[0:9,0:9 | 20:29,0:9] from c as t").unwrap();
        match q.target {
            Expr::Select(_, FrameSpec::Union(boxes)) => assert_eq!(boxes.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_difference_frame() {
        let q = parse_query(r"select t[0:99,0:99 \ 10:89,10:89] from c as t").unwrap();
        assert!(matches!(q.target, Expr::Select(_, FrameSpec::Diff(_, _))));
    }

    #[test]
    fn parses_comparison_masks() {
        let q = parse_query("select t[0:9,0:9] >= 273.5 from c as t").unwrap();
        assert!(matches!(q.target, Expr::Binary(BinaryOp::Ge, _, _)));
    }

    #[test]
    fn parses_negative_bounds_and_unary_minus() {
        let q = parse_query("select -t[-10:-1, 0:4] from c as t").unwrap();
        match q.target {
            Expr::Unary(UnaryOp::Neg, inner) => match *inner {
                Expr::Select(_, FrameSpec::Single(BoxSel(sels))) => {
                    assert_eq!(sels[0], RangeSel::Range(Some(-10), Some(-1)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_functions() {
        assert!(matches!(
            parse_expr("sqrt(x)").unwrap(),
            Expr::Unary(UnaryOp::Sqrt, _)
        ));
        assert!(matches!(
            parse_expr("double(x)").unwrap(),
            Expr::Unary(UnaryOp::Cast(CellType::F64), _)
        ));
        assert!(parse_expr("frobnicate(x)").is_err());
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("select from c").is_err());
        assert!(parse_query("select t[0:9 from c as t").is_err());
        assert!(parse_query("select t[*] from c as t").is_err());
        assert!(parse_query("select 1 + 2 from c as t").is_err()); // no var
        assert!(parse_query("select t[0:1] from c as t garbage").is_err());
    }

    #[test]
    fn chained_selections_parse() {
        // slice then trim on the result
        let e = parse_expr("t[*:*, 3][0:4]").unwrap();
        match e {
            Expr::Select(inner, _) => assert!(matches!(*inner, Expr::Select(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod where_tests {
    use super::*;
    use crate::ql::ast::OidFilter;

    #[test]
    fn parses_oid_equality() {
        let q = parse_query("select t[0:1,0:1] from c as t where oid(t) = 7").unwrap();
        assert_eq!(q.filter, Some(OidFilter::Eq(7)));
    }

    #[test]
    fn parses_oid_in_list() {
        let q = parse_query("select t[0:1,0:1] from c as t where oid(t) in (1, 2, 9)").unwrap();
        assert_eq!(q.filter, Some(OidFilter::In(vec![1, 2, 9])));
    }

    #[test]
    fn filter_accepts_logic() {
        assert!(OidFilter::Eq(3).accepts(3));
        assert!(!OidFilter::Eq(3).accepts(4));
        assert!(OidFilter::In(vec![1, 5]).accepts(5));
        assert!(!OidFilter::In(vec![1, 5]).accepts(2));
    }

    #[test]
    fn rejects_bad_where_clauses() {
        assert!(parse_query("select t[0:1,0:1] from c as t where oid(x) = 7").is_err());
        assert!(parse_query("select t[0:1,0:1] from c as t where oid(t)").is_err());
        assert!(parse_query("select t[0:1,0:1] from c as t where oid(t) in ()").is_err());
        assert!(parse_query("select t[0:1,0:1] from c as t where oid(t) = -1").is_err());
    }
}
