//! Query executor: evaluates the AST against a [`TileProvider`].
//!
//! Queries run once per object of the FROM collection (RasDaMan semantics:
//! the result is a set of MDD/scalar values). Trims applied directly to the
//! iteration variable are *pushed down* into the provider so only the tiles
//! intersecting the requested region (or frame) are fetched — on HEAVEN
//! providers this is what turns a query into a minimal set of super-tile
//! fetches.

use super::ast::{BoxSel, Expr, FrameSpec, Query, RangeSel};
use crate::error::{ArrayDbError, Result};
use crate::provider::TileProvider;
use heaven_array::{
    induced_binary, induced_scalar, induced_unary, scale_down, slice, trim, BinaryOp, Condenser,
    Frame, Interval, MDArray, Minterval, ObjectId, UnaryOp,
};

/// A query result value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An array result.
    Array(MDArray),
    /// A scalar result (condensers, scalar arithmetic).
    Scalar(f64),
}

impl Value {
    /// The scalar, if this is one.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Value::Scalar(s) => Some(*s),
            Value::Array(_) => None,
        }
    }

    /// The array, if this is one.
    pub fn as_array(&self) -> Option<&MDArray> {
        match self {
            Value::Array(a) => Some(a),
            Value::Scalar(_) => None,
        }
    }
}

/// One per-object result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The object this result was computed from.
    pub oid: ObjectId,
    /// The value.
    pub value: Value,
}

/// Execute a parsed query against a provider. The provider's
/// [`TileProvider::query_begin`]/[`TileProvider::query_end`] hooks bracket
/// the execution, including error paths.
pub fn execute(provider: &mut dyn TileProvider, query: &Query) -> Result<Vec<QueryResult>> {
    provider.query_begin(&format!("select from {}", query.collection));
    let result = execute_inner(provider, query);
    provider.query_end();
    result
}

fn execute_inner(provider: &mut dyn TileProvider, query: &Query) -> Result<Vec<QueryResult>> {
    let mut oids = provider.collection_objects(&query.collection)?;
    if let Some(f) = &query.filter {
        oids.retain(|&oid| f.accepts(oid));
    }
    let mut results = Vec::with_capacity(oids.len());
    for oid in oids {
        let value = eval(provider, oid, &query.alias, &query.target)?;
        results.push(QueryResult { oid, value });
    }
    Ok(results)
}

/// Parse and execute query text.
pub fn run(provider: &mut dyn TileProvider, text: &str) -> Result<Vec<QueryResult>> {
    let q = super::parser::parse_query(text)?;
    execute(provider, &q)
}

fn eval(provider: &mut dyn TileProvider, oid: ObjectId, alias: &str, expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Num(n) => Ok(Value::Scalar(*n)),
        Expr::Var(name) => {
            check_var(name, alias)?;
            let whole = provider.object_meta(oid)?.domain;
            Ok(Value::Array(provider.fetch_region(oid, &whole)?))
        }
        Expr::Select(inner, spec) => eval_select(provider, oid, alias, inner, spec),
        Expr::Unary(op, inner) => {
            let v = eval(provider, oid, alias, inner)?;
            Ok(match v {
                Value::Array(a) => Value::Array(induced_unary(&a, *op)),
                Value::Scalar(s) => Value::Scalar(apply_unary_scalar(*op, s)),
            })
        }
        Expr::Binary(op, l, r) => {
            let lv = eval(provider, oid, alias, l)?;
            let rv = eval(provider, oid, alias, r)?;
            eval_binary(*op, lv, rv)
        }
        Expr::Condense(c, inner) => eval_condense(provider, oid, alias, *c, inner),
        Expr::Scale(inner, factor) => {
            let v = eval(provider, oid, alias, inner)?;
            match v {
                Value::Array(a) => {
                    let factors = vec![*factor; a.domain().dim()];
                    Ok(Value::Array(scale_down(&a, &factors)?))
                }
                Value::Scalar(_) => {
                    Err(ArrayDbError::Semantic("scale() applied to a scalar".into()))
                }
            }
        }
    }
}

fn check_var(name: &str, alias: &str) -> Result<()> {
    if name == alias {
        Ok(())
    } else {
        Err(ArrayDbError::Semantic(format!(
            "unknown variable '{name}' (iteration variable is '{alias}')"
        )))
    }
}

fn apply_unary_scalar(op: UnaryOp, s: f64) -> f64 {
    match op {
        UnaryOp::Neg => -s,
        UnaryOp::Abs => s.abs(),
        UnaryOp::Sqrt => s.sqrt(),
        UnaryOp::Cast(_) => s,
    }
}

fn eval_binary(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    Ok(match (l, r) {
        (Value::Array(a), Value::Array(b)) => Value::Array(induced_binary(&a, &b, op)?),
        (Value::Array(a), Value::Scalar(s)) => Value::Array(induced_scalar(&a, s, op)?),
        (Value::Scalar(s), Value::Array(a)) => {
            // non-commutative ops need the scalar on the left
            Value::Array(scalar_op_array(s, &a, op)?)
        }
        (Value::Scalar(x), Value::Scalar(y)) => Value::Scalar(scalar_op_scalar(x, y, op)?),
    })
}

fn scalar_op_array(s: f64, a: &MDArray, op: BinaryOp) -> Result<MDArray> {
    let out_ty = op.result_type(a.cell_type(), a.cell_type());
    let mut out = MDArray::zeros(a.domain().clone(), out_ty);
    for p in a.domain().iter_points() {
        let v = scalar_op_scalar(s, a.get_f64(&p)?, op)?;
        out.set(&p, v)?;
    }
    Ok(out)
}

fn scalar_op_scalar(x: f64, y: f64, op: BinaryOp) -> Result<f64> {
    Ok(match op {
        BinaryOp::Add => x + y,
        BinaryOp::Sub => x - y,
        BinaryOp::Mul => x * y,
        BinaryOp::Div => {
            if y == 0.0 {
                return Err(ArrayDbError::Array(
                    heaven_array::ArrayError::DivisionByZero,
                ));
            }
            x / y
        }
        BinaryOp::Min => x.min(y),
        BinaryOp::Max => x.max(y),
        BinaryOp::Lt => (x < y) as u8 as f64,
        BinaryOp::Le => (x <= y) as u8 as f64,
        BinaryOp::Gt => (x > y) as u8 as f64,
        BinaryOp::Ge => (x >= y) as u8 as f64,
        BinaryOp::Eq => (x == y) as u8 as f64,
        BinaryOp::Ne => (x != y) as u8 as f64,
    })
}

/// Resolve a box selector against a base domain: a trim box plus the list
/// of axes to slice away afterwards (descending order).
fn resolve_box(sel: &BoxSel, base: &Minterval) -> Result<(Minterval, Vec<usize>)> {
    if sel.0.len() != base.dim() {
        return Err(ArrayDbError::Semantic(format!(
            "selection has {} axes, object has {}",
            sel.0.len(),
            base.dim()
        )));
    }
    let mut axes = Vec::with_capacity(base.dim());
    let mut slices = Vec::new();
    for (i, s) in sel.0.iter().enumerate() {
        let b = base.axis(i);
        let iv = match s {
            RangeSel::Range(lo, hi) => {
                let lo = lo.unwrap_or(b.lo);
                let hi = hi.unwrap_or(b.hi);
                Interval::new(lo, hi)?
            }
            RangeSel::At(p) => {
                slices.push(i);
                Interval::new(*p, *p)?
            }
        };
        axes.push(iv);
    }
    slices.reverse(); // slice from the highest axis down
    Ok((Minterval::from_intervals(axes), slices))
}

fn resolve_frame(spec: &FrameSpec, base: &Minterval) -> Result<Frame> {
    match spec {
        FrameSpec::Single(b) => {
            let (bx, slices) = resolve_box(b, base)?;
            if !slices.is_empty() {
                return Err(ArrayDbError::Semantic(
                    "slicing is not allowed inside frame selections".into(),
                ));
            }
            Ok(Frame::from_box(bx))
        }
        FrameSpec::Union(boxes) => {
            let mut f = Frame::empty(base.dim());
            for b in boxes {
                let (bx, slices) = resolve_box(b, base)?;
                if !slices.is_empty() {
                    return Err(ArrayDbError::Semantic(
                        "slicing is not allowed inside frame selections".into(),
                    ));
                }
                f = f.union(&Frame::from_box(bx))?;
            }
            Ok(f)
        }
        FrameSpec::Diff(outer, inner) => {
            let (o, so) = resolve_box(outer, base)?;
            let (i, si) = resolve_box(inner, base)?;
            if !so.is_empty() || !si.is_empty() {
                return Err(ArrayDbError::Semantic(
                    "slicing is not allowed inside frame selections".into(),
                ));
            }
            Frame::from_box(o)
                .difference(&Frame::from_box(i))
                .map_err(Into::into)
        }
    }
}

fn eval_select(
    provider: &mut dyn TileProvider,
    oid: ObjectId,
    alias: &str,
    inner: &Expr,
    spec: &FrameSpec,
) -> Result<Value> {
    // Push-down: selection applied directly to the iteration variable is
    // resolved through the provider.
    if let Expr::Var(name) = inner {
        check_var(name, alias)?;
        let meta = provider.object_meta(oid)?;
        return match spec {
            FrameSpec::Single(b) => {
                let (bx, slices) = resolve_box(b, &meta.domain)?;
                if !meta.domain.contains(&bx) {
                    return Err(ArrayDbError::Semantic(format!(
                        "selection {bx} outside object domain {}",
                        meta.domain
                    )));
                }
                let mut arr = provider.fetch_region(oid, &bx)?;
                for axis in slices {
                    let pos = bx.axis(axis).lo;
                    arr = slice(&arr, axis, pos)?;
                }
                Ok(Value::Array(arr))
            }
            _ => {
                let frame = resolve_frame(spec, &meta.domain)?;
                Ok(Value::Array(provider.fetch_frame(oid, &frame)?))
            }
        };
    }
    // General case: materialize, then select on the value.
    let v = eval(provider, oid, alias, inner)?;
    let arr = match v {
        Value::Array(a) => a,
        Value::Scalar(_) => {
            return Err(ArrayDbError::Semantic(
                "cannot apply a selection to a scalar".into(),
            ))
        }
    };
    match spec {
        FrameSpec::Single(b) => {
            let (bx, slices) = resolve_box(b, arr.domain())?;
            let mut out = trim(&arr, &bx)?;
            for axis in slices {
                let pos = bx.axis(axis).lo;
                out = slice(&out, axis, pos)?;
            }
            Ok(Value::Array(out))
        }
        _ => {
            let frame = resolve_frame(spec, arr.domain())?.clip(arr.domain());
            let bbox = frame
                .bounding_box()
                .ok_or_else(|| ArrayDbError::Semantic("frame selects nothing".into()))?;
            let mut out = MDArray::zeros(bbox, arr.cell_type());
            for b in frame.boxes() {
                out.patch(&trim(&arr, b)?)?;
            }
            Ok(Value::Array(out))
        }
    }
}

fn eval_condense(
    provider: &mut dyn TileProvider,
    oid: ObjectId,
    alias: &str,
    c: Condenser,
    inner: &Expr,
) -> Result<Value> {
    // Precomputed-result catalog hook (paper §3.9): condensers over plain
    // trims of the iteration variable are memoizable by (oid, op, region).
    if let Some(region) = plain_trim_region(provider, oid, alias, inner)? {
        if let Some(v) = provider.precomputed(oid, c, &region) {
            return Ok(Value::Scalar(v));
        }
        let arr = provider.fetch_region(oid, &region)?;
        let v = c.eval(&arr)?;
        provider.note_computed(oid, c, &region, v);
        return Ok(Value::Scalar(v));
    }
    let v = eval(provider, oid, alias, inner)?;
    match v {
        Value::Array(a) => Ok(Value::Scalar(c.eval(&a)?)),
        Value::Scalar(_) => Err(ArrayDbError::Semantic(
            "condenser applied to a scalar".into(),
        )),
    }
}

/// If `expr` is `var` or `var[plain trim]`, return the selected region.
fn plain_trim_region(
    provider: &mut dyn TileProvider,
    oid: ObjectId,
    alias: &str,
    expr: &Expr,
) -> Result<Option<Minterval>> {
    match expr {
        Expr::Var(name) if name == alias => Ok(Some(provider.object_meta(oid)?.domain)),
        Expr::Select(inner, FrameSpec::Single(b)) => {
            if let Expr::Var(name) = &**inner {
                if name == alias {
                    let meta = provider.object_meta(oid)?;
                    let (bx, slices) = resolve_box(b, &meta.domain)?;
                    if slices.is_empty() && meta.domain.contains(&bx) {
                        return Ok(Some(bx));
                    }
                }
            }
            Ok(None)
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::ArrayDb;
    use heaven_array::{CellType, Point, Tiling};

    fn setup() -> (ArrayDb, ObjectId) {
        let mut adb = ArrayDb::for_tests();
        adb.create_collection("temps", CellType::F64, 2).unwrap();
        let dom = Minterval::new(&[(0, 19), (0, 19)]).unwrap();
        let arr = MDArray::generate(dom, CellType::F64, |p| {
            (p.coord(0) * 100 + p.coord(1)) as f64
        });
        let oid = adb
            .insert_object(
                "temps",
                &arr,
                Tiling::Regular {
                    tile_shape: vec![10, 10],
                },
            )
            .unwrap();
        (adb, oid)
    }

    #[test]
    fn trim_query_returns_subarray() {
        let (mut adb, _) = setup();
        let rs = run(&mut adb, "select t[5:6, 7:8] from temps as t").unwrap();
        assert_eq!(rs.len(), 1);
        let arr = rs[0].value.as_array().unwrap();
        assert_eq!(arr.domain(), &Minterval::new(&[(5, 6), (7, 8)]).unwrap());
        assert_eq!(arr.get_f64(&Point::new(vec![6, 8])).unwrap(), 608.0);
    }

    #[test]
    fn slice_query_reduces_dimensionality() {
        let (mut adb, _) = setup();
        let rs = run(&mut adb, "select t[*:*, 3] from temps as t").unwrap();
        let arr = rs[0].value.as_array().unwrap();
        assert_eq!(arr.domain().dim(), 1);
        assert_eq!(arr.get_f64(&Point::new(vec![7])).unwrap(), 703.0);
    }

    #[test]
    fn condenser_query_returns_scalar() {
        let (mut adb, _) = setup();
        let rs = run(&mut adb, "select avg_cells(t[0:1, 0:1]) from temps as t").unwrap();
        let avg = rs[0].value.as_scalar().unwrap();
        assert_eq!(avg, (0.0 + 1.0 + 100.0 + 101.0) / 4.0);
    }

    #[test]
    fn arithmetic_with_scalars() {
        let (mut adb, _) = setup();
        let rs = run(&mut adb, "select (t[0:0,0:1] + 10) * 2 from temps as t").unwrap();
        let arr = rs[0].value.as_array().unwrap();
        assert_eq!(arr.get_f64(&Point::new(vec![0, 0])).unwrap(), 20.0);
        assert_eq!(arr.get_f64(&Point::new(vec![0, 1])).unwrap(), 22.0);
    }

    #[test]
    fn scalar_minus_array_is_not_commuted() {
        let (mut adb, _) = setup();
        let rs = run(&mut adb, "select 100 - t[0:0, 0:1] from temps as t").unwrap();
        let arr = rs[0].value.as_array().unwrap();
        assert_eq!(arr.get_f64(&Point::new(vec![0, 0])).unwrap(), 100.0);
        assert_eq!(arr.get_f64(&Point::new(vec![0, 1])).unwrap(), 99.0);
    }

    #[test]
    fn comparison_mask_counts() {
        let (mut adb, _) = setup();
        let rs = run(&mut adb, "select count_cells(t >= 1900) from temps as t").unwrap();
        // values 1900..=1919
        assert_eq!(rs[0].value.as_scalar().unwrap(), 20.0);
    }

    #[test]
    fn union_frame_query() {
        let (mut adb, _) = setup();
        let rs = run(&mut adb, "select t[0:4,0:4 | 15:19,15:19] from temps as t").unwrap();
        let arr = rs[0].value.as_array().unwrap();
        // bounding box covers both corners
        assert_eq!(arr.domain(), &Minterval::new(&[(0, 19), (0, 19)]).unwrap());
        assert_eq!(arr.get_f64(&Point::new(vec![2, 2])).unwrap(), 202.0);
        assert_eq!(arr.get_f64(&Point::new(vec![17, 17])).unwrap(), 1717.0);
        // outside the frame: zero
        assert_eq!(arr.get_f64(&Point::new(vec![10, 10])).unwrap(), 0.0);
    }

    #[test]
    fn difference_frame_query() {
        let (mut adb, _) = setup();
        let rs = run(
            &mut adb,
            r"select add_cells(t[0:19,0:19 \ 1:18,1:18]) from temps as t",
        )
        .unwrap();
        // border ring sum
        let dom = Minterval::new(&[(0, 19), (0, 19)]).unwrap();
        let mut expect = 0.0;
        for p in dom.iter_points() {
            let on_border =
                p.coord(0) == 0 || p.coord(0) == 19 || p.coord(1) == 0 || p.coord(1) == 19;
            if on_border {
                expect += (p.coord(0) * 100 + p.coord(1)) as f64;
            }
        }
        assert_eq!(rs[0].value.as_scalar().unwrap(), expect);
    }

    #[test]
    fn queries_run_per_object() {
        let (mut adb, _) = setup();
        let dom = Minterval::new(&[(0, 9), (0, 9)]).unwrap();
        let arr2 = MDArray::generate(dom, CellType::F64, |_| 1.0);
        adb.insert_object(
            "temps",
            &arr2,
            Tiling::Regular {
                tile_shape: vec![5, 5],
            },
        )
        .unwrap();
        let rs = run(&mut adb, "select avg_cells(t[0:1,0:1]) from temps as t").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[1].value.as_scalar().unwrap(), 1.0);
    }

    #[test]
    fn scale_query_downsamples() {
        let (mut adb, _) = setup();
        let rs = run(&mut adb, "select scale(t[0:19,0:19], 10) from temps as t").unwrap();
        let arr = rs[0].value.as_array().unwrap();
        assert_eq!(arr.domain().shape(), vec![2, 2]);
        // top-left 10x10 block of values r*100+c, r,c in 0..10:
        // mean = 4.5*100 + 4.5 = 454.5
        assert_eq!(arr.get_f64(&Point::new(vec![0, 0])).unwrap(), 454.5);
        // bad factor and scalar operand rejected
        assert!(run(&mut adb, "select scale(t[0:1,0:1], 0) from temps as t").is_err());
        assert!(run(&mut adb, "select scale(avg_cells(t), 2) from temps as t").is_err());
    }

    #[test]
    fn where_clause_filters_objects() {
        let (mut adb, oid1) = setup();
        let dom = Minterval::new(&[(0, 9), (0, 9)]).unwrap();
        let arr2 = MDArray::generate(dom, CellType::F64, |_| 2.0);
        let oid2 = adb
            .insert_object(
                "temps",
                &arr2,
                Tiling::Regular {
                    tile_shape: vec![5, 5],
                },
            )
            .unwrap();
        let rs = run(
            &mut adb,
            &format!("select avg_cells(t[0:1,0:1]) from temps as t where oid(t) = {oid2}"),
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].oid, oid2);
        assert_eq!(rs[0].value.as_scalar().unwrap(), 2.0);
        let rs = run(
            &mut adb,
            &format!(
                "select avg_cells(t[0:1,0:1]) from temps as t where oid(t) in ({oid1}, {oid2})"
            ),
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
        // no matching objects → empty result set
        let rs = run(
            &mut adb,
            "select avg_cells(t[0:1,0:1]) from temps as t where oid(t) = 999",
        )
        .unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn semantic_errors_detected() {
        let (mut adb, _) = setup();
        assert!(run(&mut adb, "select x[0:1,0:1] from temps as t").is_err());
        assert!(run(&mut adb, "select t[0:1] from temps as t").is_err()); // wrong dims
        assert!(run(&mut adb, "select t[0:100,0:1] from temps as t").is_err()); // out of domain
        assert!(run(&mut adb, "select avg_cells(1 + 1) from temps as t").is_err());
        assert!(run(&mut adb, "select t[0:1,0:1] from nosuch as t").is_err());
    }

    #[test]
    fn out_of_domain_scalar_division_guarded() {
        let (mut adb, _) = setup();
        assert!(run(&mut adb, "select t[0:1,0:1] / 0 from temps as t").is_err());
    }
}
