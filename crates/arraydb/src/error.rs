//! Error type for the array DBMS.

use heaven_array::ArrayError;
use heaven_rdbms::DbError;
use std::fmt;

/// Errors raised by the array DBMS.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // struct-variant fields are self-describing
pub enum ArrayDbError {
    /// Unknown collection name.
    NoSuchCollection(String),
    /// A collection with this name already exists.
    CollectionExists(String),
    /// Unknown object id.
    NoSuchObject(u64),
    /// Unknown tile id.
    NoSuchTile(u64),
    /// The tile is not on disk (it has been exported to tertiary storage);
    /// a hierarchy-aware provider must resolve it.
    TileExported(u64),
    /// Cell type of an inserted array does not match the collection.
    WrongCellType {
        collection: String,
        expected: String,
        got: String,
    },
    /// Query text failed to lex/parse.
    Syntax { pos: usize, msg: String },
    /// Query is type-incorrect or malformed.
    Semantic(String),
    /// Array-algebra failure during evaluation.
    Array(ArrayError),
    /// Storage-layer failure.
    Db(DbError),
}

impl fmt::Display for ArrayDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayDbError::NoSuchCollection(n) => write!(f, "no such collection: {n}"),
            ArrayDbError::CollectionExists(n) => write!(f, "collection exists: {n}"),
            ArrayDbError::NoSuchObject(o) => write!(f, "no such object: {o}"),
            ArrayDbError::NoSuchTile(t) => write!(f, "no such tile: {t}"),
            ArrayDbError::TileExported(t) => {
                write!(f, "tile {t} exported to tertiary storage")
            }
            ArrayDbError::WrongCellType {
                collection,
                expected,
                got,
            } => write!(
                f,
                "collection {collection} holds {expected} cells, got {got}"
            ),
            ArrayDbError::Syntax { pos, msg } => write!(f, "syntax error at {pos}: {msg}"),
            ArrayDbError::Semantic(msg) => write!(f, "semantic error: {msg}"),
            ArrayDbError::Array(e) => write!(f, "array error: {e}"),
            ArrayDbError::Db(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ArrayDbError {}

impl From<ArrayError> for ArrayDbError {
    fn from(e: ArrayError) -> Self {
        ArrayDbError::Array(e)
    }
}

impl From<DbError> for ArrayDbError {
    fn from(e: DbError) -> Self {
        ArrayDbError::Db(e)
    }
}

/// Result alias for the array DBMS.
pub type Result<T> = std::result::Result<T, ArrayDbError>;
