//! `TileProvider` — the storage-hierarchy abstraction under the executor.
//!
//! The query executor does not care *where* tiles live. [`crate::ArrayDb`]
//! serves them from secondary storage only; HEAVEN implements the same
//! trait but resolves exported tiles through its cache hierarchy and the
//! tertiary-storage system. This is the seam that makes queries
//! transparent across the whole hierarchy (paper goal 1, §1.3).

use crate::error::Result;
use crate::schema::ObjectMeta;
use crate::storage::ArrayDb;
use heaven_array::{Condenser, Frame, MDArray, Minterval, ObjectId};

/// Source of object metadata and cell data for the query executor.
pub trait TileProvider {
    /// Metadata of an object.
    fn object_meta(&self, oid: ObjectId) -> Result<ObjectMeta>;

    /// Object ids of a collection, in insertion order.
    fn collection_objects(&self, name: &str) -> Result<Vec<ObjectId>>;

    /// Materialize the sub-array of `oid` covering `region` (clipped to the
    /// object domain).
    fn fetch_region(&mut self, oid: ObjectId, region: &Minterval) -> Result<MDArray>;

    /// Materialize the cells of a frame into its bounding box (cells outside
    /// the frame are zero). Default: fetch box by box.
    fn fetch_frame(&mut self, oid: ObjectId, frame: &Frame) -> Result<MDArray> {
        let meta = self.object_meta(oid)?;
        let clipped = frame.clip(&meta.domain);
        let bbox = clipped.bounding_box().ok_or_else(|| {
            crate::error::ArrayDbError::Semantic("frame outside object domain".into())
        })?;
        let mut out = MDArray::zeros(bbox, meta.cell_type);
        for b in clipped.boxes() {
            let part = self.fetch_region(oid, b)?;
            out.patch(&part)?;
        }
        Ok(out)
    }

    /// Hook for the precomputed-operation catalog (paper §3.9): return a
    /// memoized condenser result for `(oid, op, region)` if one exists.
    fn precomputed(&mut self, _oid: ObjectId, _op: Condenser, _region: &Minterval) -> Option<f64> {
        None
    }

    /// Notify the provider of a freshly computed condenser result, so it
    /// may be memoized. Default: discard.
    fn note_computed(&mut self, _oid: ObjectId, _op: Condenser, _region: &Minterval, _value: f64) {}

    /// Hook called by the executor when a query starts, with a short
    /// human-readable label. Providers with an observability layer open
    /// their per-query bracket here (root trace span, counter snapshot).
    /// Default: ignore.
    fn query_begin(&mut self, _label: &str) {}

    /// Hook called by the executor when the query finishes (on success
    /// *and* on error), closing whatever [`Self::query_begin`] opened.
    /// Default: ignore.
    fn query_end(&mut self) {}
}

impl TileProvider for ArrayDb {
    fn object_meta(&self, oid: ObjectId) -> Result<ObjectMeta> {
        self.object(oid).cloned()
    }

    fn collection_objects(&self, name: &str) -> Result<Vec<ObjectId>> {
        Ok(self.collection(name)?.objects.clone())
    }

    fn fetch_region(&mut self, oid: ObjectId, region: &Minterval) -> Result<MDArray> {
        self.read_subarray(oid, region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heaven_array::{CellType, Point, Tiling};

    #[test]
    fn arraydb_provider_fetches_regions_and_frames() {
        let mut adb = ArrayDb::for_tests();
        adb.create_collection("c", CellType::I32, 2).unwrap();
        let dom = Minterval::new(&[(0, 19), (0, 19)]).unwrap();
        let arr = MDArray::generate(dom, CellType::I32, |p| {
            (p.coord(0) * 100 + p.coord(1)) as f64
        });
        let oid = adb
            .insert_object(
                "c",
                &arr,
                Tiling::Regular {
                    tile_shape: vec![10, 10],
                },
            )
            .unwrap();
        assert_eq!(adb.collection_objects("c").unwrap(), vec![oid]);
        let region = Minterval::new(&[(5, 6), (5, 6)]).unwrap();
        let sub = adb.fetch_region(oid, &region).unwrap();
        assert_eq!(sub.get_f64(&Point::new(vec![5, 6])).unwrap(), 506.0);

        // L-frame fetch
        let f = Frame::from_box(Minterval::new(&[(0, 19), (0, 4)]).unwrap())
            .union(&Frame::from_box(
                Minterval::new(&[(15, 19), (0, 19)]).unwrap(),
            ))
            .unwrap();
        let got = adb.fetch_frame(oid, &f).unwrap();
        // inside the frame: real data
        assert_eq!(got.get_f64(&Point::new(vec![17, 10])).unwrap(), 1710.0);
        assert_eq!(got.get_f64(&Point::new(vec![3, 2])).unwrap(), 302.0);
        // outside the frame but inside bbox: zero
        assert_eq!(got.get_f64(&Point::new(vec![3, 10])).unwrap(), 0.0);
    }
}
