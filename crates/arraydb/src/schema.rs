//! Logical schema: collections of MDD objects (paper §2.6.2).
//!
//! A *collection* is a named set of multidimensional objects sharing a cell
//! type and dimensionality; each *object* (MDD) has a spatial domain and a
//! set of tiles.

use heaven_array::{CellType, Minterval, ObjectId, TileId, Tiling};

/// Identifier of a collection.
pub type CollectionId = u64;

/// Metadata of a collection.
#[derive(Debug, Clone, PartialEq)]
pub struct Collection {
    /// Id of the collection.
    pub id: CollectionId,
    /// Collection name (unique).
    pub name: String,
    /// Cell type of all member objects.
    pub cell_type: CellType,
    /// Dimensionality of all member objects.
    pub dim: usize,
    /// Member objects in insertion order.
    pub objects: Vec<ObjectId>,
}

/// Metadata of one MDD object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectMeta {
    /// Object id.
    pub oid: ObjectId,
    /// Owning collection.
    pub collection: CollectionId,
    /// Spatial domain.
    pub domain: Minterval,
    /// Cell type.
    pub cell_type: CellType,
    /// The tiling used at insertion.
    pub tiling: Tiling,
    /// Tiles: `(domain, tile id)` pairs in creation (grid row-major) order.
    pub tiles: Vec<(Minterval, TileId)>,
}

impl ObjectMeta {
    /// Total cell-payload size of the object in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.domain.cell_count() * self.cell_type.size_bytes() as u64
    }

    /// Tile ids whose domains intersect `region`.
    pub fn tiles_intersecting(&self, region: &Minterval) -> Vec<TileId> {
        self.tiles
            .iter()
            .filter(|(d, _)| d.intersects(region))
            .map(|&(_, id)| id)
            .collect()
    }

    /// Domain of a tile of this object.
    pub fn tile_domain(&self, tile: TileId) -> Option<&Minterval> {
        self.tiles
            .iter()
            .find(|&&(_, id)| id == tile)
            .map(|(d, _)| d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_meta_queries() {
        let domain = Minterval::new(&[(0, 19), (0, 19)]).unwrap();
        let tiling = Tiling::Regular {
            tile_shape: vec![10, 10],
        };
        let tiles: Vec<(Minterval, TileId)> = tiling
            .tile_domains(&domain, CellType::F32)
            .unwrap()
            .into_iter()
            .zip(100..)
            .collect();
        let meta = ObjectMeta {
            oid: 7,
            collection: 1,
            domain,
            cell_type: CellType::F32,
            tiling,
            tiles,
        };
        assert_eq!(meta.size_bytes(), 400 * 4);
        let q = Minterval::new(&[(5, 14), (0, 4)]).unwrap();
        assert_eq!(meta.tiles_intersecting(&q), vec![100, 102]);
        assert_eq!(
            meta.tile_domain(102),
            Some(&Minterval::new(&[(10, 19), (0, 9)]).unwrap())
        );
        assert_eq!(meta.tile_domain(999), None);
    }
}
