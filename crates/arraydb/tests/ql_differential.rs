//! Differential testing of the query language: results of RasQL queries
//! must equal direct array-algebra computation on the source array,
//! regardless of tiling.

use heaven_array::{
    induced_scalar, slice, trim, BinaryOp, CellType, Condenser, MDArray, Minterval, Point, Tiling,
};
use heaven_arraydb::{run, ArrayDb};
use proptest::prelude::*;

/// Build a DB holding one deterministic 2-D object with the given tiling
/// edges, returning the source array for direct comparison.
fn setup(extent: i64, te0: u64, te1: u64, seed: i64) -> (ArrayDb, MDArray) {
    let mut adb = ArrayDb::for_tests();
    adb.create_collection("c", CellType::F64, 2).unwrap();
    let dom = Minterval::new(&[(0, extent - 1), (0, extent - 1)]).unwrap();
    let arr = MDArray::generate(dom, CellType::F64, |p: &Point| {
        ((seed + p.coord(0) * 31 + p.coord(1) * 7) % 1000) as f64
    });
    adb.insert_object(
        "c",
        &arr,
        Tiling::Regular {
            tile_shape: vec![te0, te1],
        },
    )
    .unwrap();
    (adb, arr)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trim_query_equals_direct_trim(
        extent in 8i64..24,
        te0 in 1u64..9,
        te1 in 1u64..9,
        seed in 0i64..100,
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
        fw in 0.0f64..1.0,
        fh in 0.0f64..1.0,
    ) {
        let (mut adb, arr) = setup(extent, te0, te1, seed);
        let lo0 = (fx * (extent - 1) as f64) as i64;
        let lo1 = (fy * (extent - 1) as f64) as i64;
        let hi0 = lo0 + (fw * (extent - 1 - lo0) as f64) as i64;
        let hi1 = lo1 + (fh * (extent - 1 - lo1) as f64) as i64;
        let q = format!("select c[{lo0}:{hi0}, {lo1}:{hi1}] from c");
        let rs = run(&mut adb, &q).unwrap();
        let got = rs[0].value.as_array().unwrap();
        let region = Minterval::new(&[(lo0, hi0), (lo1, hi1)]).unwrap();
        let expect = trim(&arr, &region).unwrap();
        prop_assert_eq!(got, &expect);
    }

    #[test]
    fn slice_query_equals_direct_slice(
        extent in 8i64..24,
        te0 in 1u64..9,
        te1 in 1u64..9,
        seed in 0i64..100,
        frac in 0.0f64..1.0,
    ) {
        let (mut adb, arr) = setup(extent, te0, te1, seed);
        let pos = (frac * (extent - 1) as f64) as i64;
        let rs = run(&mut adb, &format!("select c[{pos}, *:*] from c")).unwrap();
        let got = rs[0].value.as_array().unwrap();
        let expect = slice(&arr, 0, pos).unwrap();
        prop_assert_eq!(got, &expect);
    }

    #[test]
    fn condenser_query_equals_direct_condense(
        extent in 8i64..20,
        te0 in 1u64..9,
        te1 in 1u64..9,
        seed in 0i64..100,
        op_idx in 0usize..5,
    ) {
        let (mut adb, arr) = setup(extent, te0, te1, seed);
        let ops = [
            Condenser::Sum,
            Condenser::Avg,
            Condenser::Min,
            Condenser::Max,
            Condenser::CountNonZero,
        ];
        let op = ops[op_idx];
        let rs = run(&mut adb, &format!("select {}(c[*:*, *:*]) from c", op.name())).unwrap();
        let got = rs[0].value.as_scalar().unwrap();
        let expect = op.eval(&arr).unwrap();
        prop_assert!((got - expect).abs() < 1e-9, "{op:?}: {got} vs {expect}");
    }

    #[test]
    fn arithmetic_query_equals_direct_ops(
        extent in 8i64..16,
        te in 1u64..9,
        seed in 0i64..100,
        k in 1i64..50,
    ) {
        let (mut adb, arr) = setup(extent, te, te, seed);
        let rs = run(&mut adb, &format!("select c * 2 + {k} from c")).unwrap();
        let got = rs[0].value.as_array().unwrap();
        let expect = induced_scalar(
            &induced_scalar(&arr, 2.0, BinaryOp::Mul).unwrap(),
            k as f64,
            BinaryOp::Add,
        )
        .unwrap();
        prop_assert_eq!(got, &expect);
    }

    #[test]
    fn union_frame_query_equals_patchwork(
        extent in 10i64..20,
        te in 1u64..9,
        seed in 0i64..100,
        split in 0.2f64..0.8,
    ) {
        let (mut adb, arr) = setup(extent, te, te, seed);
        let m = (split * (extent - 1) as f64) as i64;
        // two horizontal bands
        let q = format!("select c[0:{m},0:{e} | {n}:{e},0:{e}] from c",
            e = extent - 1, n = (m + 2).min(extent - 1));
        let rs = run(&mut adb, &q).unwrap();
        let got = rs[0].value.as_array().unwrap();
        // direct: zeros + patch both bands
        let mut expect = MDArray::zeros(
            Minterval::new(&[(0, extent - 1), (0, extent - 1)]).unwrap(),
            CellType::F64,
        );
        let b1 = Minterval::new(&[(0, m), (0, extent - 1)]).unwrap();
        let b2 =
            Minterval::new(&[((m + 2).min(extent - 1), extent - 1), (0, extent - 1)])
                .unwrap();
        expect.patch(&trim(&arr, &b1).unwrap()).unwrap();
        expect.patch(&trim(&arr, &b2).unwrap()).unwrap();
        prop_assert_eq!(got, &expect);
    }

    #[test]
    fn mask_count_equals_direct_threshold(
        extent in 8i64..16,
        te in 1u64..9,
        seed in 0i64..100,
        threshold in 0i64..1000,
    ) {
        let (mut adb, arr) = setup(extent, te, te, seed);
        let rs = run(
            &mut adb,
            &format!("select count_cells(c >= {threshold}) from c"),
        )
        .unwrap();
        let got = rs[0].value.as_scalar().unwrap();
        let mask = induced_scalar(&arr, threshold as f64, BinaryOp::Ge).unwrap();
        let expect = Condenser::CountNonZero.eval(&mask).unwrap();
        prop_assert_eq!(got, expect);
    }
}
