#![warn(missing_docs)]
//! # heaven-array — multidimensional array substrate
//!
//! The array data model underlying the HEAVEN reproduction: domains
//! ([`Minterval`]), cell types, dense arrays ([`MDArray`]), tiling, tile
//! codecs, linearization orders, array algebra (trim / slice / induced /
//! condense) and multidimensional tile indexes.
//!
//! This corresponds to RasDaMan's logical and physical data model as
//! described in §2.1 and §2.6 of the dissertation; every higher layer
//! (the array DBMS, the HEAVEN core) builds on these types.

pub mod codec;
pub mod domain;
pub mod error;
pub mod frame;
pub mod index;
pub mod mdd;
pub mod ops;
pub mod order;
pub mod tile;
pub mod tiling;
pub mod value;

pub use codec::{
    decode_wire, encode_wire, rle_compress, rle_decompress, rle_ratio, Codec, CodecPolicy,
    WireError,
};
pub use domain::{Interval, Minterval, Point};
pub use error::{ArrayError, Result};
pub use frame::{subtract_box, Frame};
pub use index::{GridIndex, RTreeIndex, TileIndex};
pub use mdd::MDArray;
pub use ops::{
    induced_binary, induced_scalar, induced_unary, scale_down, slice, trim, BinaryOp, Condenser,
    UnaryOp,
};
pub use order::LinearOrder;
pub use tile::{ObjectId, Tile, TileId};
pub use tiling::Tiling;
pub use value::{CellType, CellValue};
