//! Frames: non-hypercube query regions (the geometry of Object Framing).
//!
//! The paper's Object-Framing extension (§3.8) lets users pose range
//! queries over *complex frames* instead of single hyper-boxes: unions of
//! boxes, boxes with holes (shells), L-shapes. A [`Frame`] is a set of
//! **pairwise disjoint** mintervals closed under union, intersection and
//! difference; evaluation layers fetch only frame-touching tiles.

use crate::domain::{Interval, Minterval};
use crate::error::{ArrayError, Result};

/// A region composed of pairwise disjoint boxes.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    boxes: Vec<Minterval>,
    dim: usize,
}

impl Frame {
    /// Frame of a single box.
    pub fn from_box(b: Minterval) -> Frame {
        Frame {
            dim: b.dim(),
            boxes: vec![b],
        }
    }

    /// The empty frame of dimensionality `dim`.
    pub fn empty(dim: usize) -> Frame {
        Frame {
            boxes: Vec::new(),
            dim,
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The disjoint boxes composing the frame.
    pub fn boxes(&self) -> &[Minterval] {
        &self.boxes
    }

    /// Whether the frame covers no cells.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Number of cells covered.
    pub fn cell_count(&self) -> u64 {
        self.boxes.iter().map(|b| b.cell_count()).sum()
    }

    /// Smallest box covering the frame.
    pub fn bounding_box(&self) -> Option<Minterval> {
        let mut it = self.boxes.iter();
        let first = it.next()?.clone();
        Some(it.fold(first, |acc, b| acc.hull(b).expect("same dim")))
    }

    /// Union with another frame (result boxes stay disjoint).
    pub fn union(&self, other: &Frame) -> Result<Frame> {
        if self.dim != other.dim {
            return Err(ArrayError::DimensionMismatch {
                expected: self.dim,
                got: other.dim,
            });
        }
        // Add other's boxes minus whatever self already covers.
        let mut boxes = self.boxes.clone();
        for b in &other.boxes {
            let mut pieces = vec![b.clone()];
            for mine in &self.boxes {
                let mut next = Vec::new();
                for piece in pieces {
                    next.extend(subtract_box(&piece, mine));
                }
                pieces = next;
            }
            boxes.extend(pieces);
        }
        Ok(Frame {
            boxes,
            dim: self.dim,
        })
    }

    /// Difference: cells of `self` not in `other`.
    pub fn difference(&self, other: &Frame) -> Result<Frame> {
        if self.dim != other.dim {
            return Err(ArrayError::DimensionMismatch {
                expected: self.dim,
                got: other.dim,
            });
        }
        let mut boxes = Vec::new();
        for mine in &self.boxes {
            let mut pieces = vec![mine.clone()];
            for theirs in &other.boxes {
                let mut next = Vec::new();
                for piece in pieces {
                    next.extend(subtract_box(&piece, theirs));
                }
                pieces = next;
            }
            boxes.extend(pieces);
        }
        Ok(Frame {
            boxes,
            dim: self.dim,
        })
    }

    /// Intersection with a single box (clip).
    pub fn clip(&self, region: &Minterval) -> Frame {
        Frame {
            boxes: self
                .boxes
                .iter()
                .filter_map(|b| b.intersection(region))
                .collect(),
            dim: self.dim,
        }
    }

    /// Whether the frame intersects `region` (e.g. a tile domain).
    pub fn touches(&self, region: &Minterval) -> bool {
        self.boxes.iter().any(|b| b.intersects(region))
    }

    /// Number of cells shared with `region`.
    pub fn overlap_cells(&self, region: &Minterval) -> u64 {
        self.boxes.iter().map(|b| b.overlap_cells(region)).sum()
    }

    /// Whether a point lies in the frame.
    pub fn contains_point(&self, p: &crate::domain::Point) -> bool {
        self.boxes.iter().any(|b| b.contains_point(p))
    }

    /// Check the disjointness invariant (used by property tests).
    pub fn check_disjoint(&self) -> bool {
        for i in 0..self.boxes.len() {
            for j in (i + 1)..self.boxes.len() {
                if self.boxes[i].intersects(&self.boxes[j]) {
                    return false;
                }
            }
        }
        true
    }
}

/// `a \ b` as a set of disjoint boxes.
///
/// Standard axis-sweep decomposition: for each axis, split off the parts of
/// `a` lying below/above `b` on that axis, then shrink `a` to `b`'s range
/// on the axis and continue.
pub fn subtract_box(a: &Minterval, b: &Minterval) -> Vec<Minterval> {
    let Some(overlap) = a.intersection(b) else {
        return vec![a.clone()];
    };
    let mut out = Vec::new();
    let mut remaining = a.clone();
    for axis in 0..a.dim() {
        let r = remaining.axis(axis);
        let o = overlap.axis(axis);
        // part below the overlap on this axis
        if r.lo < o.lo {
            let mut axes = remaining.axes().to_vec();
            axes[axis] = Interval::new(r.lo, o.lo - 1).expect("lo < o.lo");
            out.push(Minterval::from_intervals(axes));
        }
        // part above the overlap
        if r.hi > o.hi {
            let mut axes = remaining.axes().to_vec();
            axes[axis] = Interval::new(o.hi + 1, r.hi).expect("hi > o.hi");
            out.push(Minterval::from_intervals(axes));
        }
        // shrink to the overlap on this axis and continue
        let mut axes = remaining.axes().to_vec();
        axes[axis] = o;
        remaining = Minterval::from_intervals(axes);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Point;

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    #[test]
    fn subtract_disjoint_returns_original() {
        let a = mi(&[(0, 4), (0, 4)]);
        let b = mi(&[(10, 14), (0, 4)]);
        assert_eq!(subtract_box(&a, &b), vec![a]);
    }

    #[test]
    fn subtract_contained_hole_produces_shell() {
        let a = mi(&[(0, 9), (0, 9)]);
        let b = mi(&[(3, 6), (3, 6)]);
        let parts = subtract_box(&a, &b);
        let total: u64 = parts.iter().map(|p| p.cell_count()).sum();
        assert_eq!(total, 100 - 16);
        // disjoint
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                assert!(!parts[i].intersects(&parts[j]));
            }
            assert!(!parts[i].intersects(&b));
        }
    }

    #[test]
    fn subtract_covering_box_is_empty() {
        let a = mi(&[(2, 4), (2, 4)]);
        let b = mi(&[(0, 9), (0, 9)]);
        assert!(subtract_box(&a, &b).is_empty());
    }

    #[test]
    fn union_of_overlapping_boxes_counts_once() {
        let f1 = Frame::from_box(mi(&[(0, 9), (0, 9)]));
        let f2 = Frame::from_box(mi(&[(5, 14), (0, 9)]));
        let u = f1.union(&f2).unwrap();
        assert!(u.check_disjoint());
        assert_eq!(u.cell_count(), 15 * 10);
        assert!(u.contains_point(&Point::new(vec![12, 3])));
        assert!(!u.contains_point(&Point::new(vec![20, 3])));
    }

    #[test]
    fn l_shape_via_union() {
        // L-shape: vertical bar plus horizontal bar.
        let v = Frame::from_box(mi(&[(0, 99), (0, 9)]));
        let h = Frame::from_box(mi(&[(90, 99), (0, 99)]));
        let l = v.union(&h).unwrap();
        assert_eq!(l.cell_count(), 100 * 10 + 10 * 100 - 10 * 10);
        assert!(l.check_disjoint());
    }

    #[test]
    fn shell_via_difference() {
        let outer = Frame::from_box(mi(&[(0, 99), (0, 99)]));
        let inner = Frame::from_box(mi(&[(10, 89), (10, 89)]));
        let shell = outer.difference(&inner).unwrap();
        assert_eq!(shell.cell_count(), 100 * 100 - 80 * 80);
        assert!(shell.check_disjoint());
        assert!(!shell.contains_point(&Point::new(vec![50, 50])));
        assert!(shell.contains_point(&Point::new(vec![5, 50])));
    }

    #[test]
    fn touches_and_overlap() {
        let shell = Frame::from_box(mi(&[(0, 99), (0, 99)]))
            .difference(&Frame::from_box(mi(&[(10, 89), (10, 89)])))
            .unwrap();
        let central_tile = mi(&[(40, 49), (40, 49)]);
        let edge_tile = mi(&[(0, 9), (40, 49)]);
        assert!(!shell.touches(&central_tile));
        assert!(shell.touches(&edge_tile));
        assert_eq!(shell.overlap_cells(&edge_tile), 100);
        assert_eq!(shell.overlap_cells(&central_tile), 0);
    }

    #[test]
    fn clip_restricts_to_region() {
        let f = Frame::from_box(mi(&[(0, 9), (0, 9)]));
        let c = f.clip(&mi(&[(5, 20), (5, 20)]));
        assert_eq!(c.cell_count(), 25);
        assert_eq!(c.bounding_box(), Some(mi(&[(5, 9), (5, 9)])));
    }

    #[test]
    fn empty_frame_behaviour() {
        let e = Frame::empty(2);
        assert!(e.is_empty());
        assert_eq!(e.cell_count(), 0);
        assert_eq!(e.bounding_box(), None);
        assert!(!e.touches(&mi(&[(0, 1), (0, 1)])));
        let f = Frame::from_box(mi(&[(0, 1), (0, 1)]));
        assert_eq!(f.difference(&f).unwrap().cell_count(), 0);
        assert_eq!(e.union(&f).unwrap().cell_count(), 4);
    }
}
