//! Spatial domains: points and multidimensional intervals.
//!
//! RasDaMan (and hence HEAVEN) describes every array and every tile by a
//! *minterval* — an axis-aligned hyper-box `[lo_0:hi_0, ..., lo_{d-1}:hi_{d-1}]`
//! with inclusive integer bounds. All spatial reasoning (tiling, indexing,
//! super-tile formation, object framing) is performed on mintervals.

use crate::error::{ArrayError, Result};
use std::fmt;

/// A point in d-dimensional integer space.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point(pub Vec<i64>);

impl Point {
    /// Create a point from coordinates.
    pub fn new(coords: Vec<i64>) -> Self {
        Point(coords)
    }

    /// Dimensionality of the point.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Coordinate along `axis`.
    pub fn coord(&self, axis: usize) -> i64 {
        self.0[axis]
    }

    /// Component-wise addition.
    pub fn add(&self, other: &Point) -> Result<Point> {
        if self.dim() != other.dim() {
            return Err(ArrayError::DimensionMismatch {
                expected: self.dim(),
                got: other.dim(),
            });
        }
        Ok(Point(
            self.0.iter().zip(&other.0).map(|(a, b)| a + b).collect(),
        ))
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<i64>> for Point {
    fn from(v: Vec<i64>) -> Self {
        Point(v)
    }
}

/// One inclusive 1-D interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// Create an interval, validating `lo <= hi`.
    pub fn new(lo: i64, hi: i64) -> Result<Interval> {
        if lo > hi {
            return Err(ArrayError::InvalidInterval { lo, hi });
        }
        Ok(Interval { lo, hi })
    }

    /// Number of integer positions covered.
    pub fn extent(&self) -> u64 {
        (self.hi - self.lo + 1) as u64
    }

    /// Whether `p` lies inside.
    pub fn contains(&self, p: i64) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Whether `other` is fully inside `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Intersection, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Smallest interval covering both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.lo, self.hi)
    }
}

/// A multidimensional interval (hyper-box with inclusive integer bounds).
///
/// This is RasDaMan's `minterval`; written `[lo0:hi0, lo1:hi1, ...]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Minterval {
    axes: Vec<Interval>,
}

impl Minterval {
    /// Build from per-axis `(lo, hi)` pairs.
    pub fn new(bounds: &[(i64, i64)]) -> Result<Minterval> {
        let mut axes = Vec::with_capacity(bounds.len());
        for &(lo, hi) in bounds {
            axes.push(Interval::new(lo, hi)?);
        }
        Ok(Minterval { axes })
    }

    /// Build from intervals.
    pub fn from_intervals(axes: Vec<Interval>) -> Minterval {
        Minterval { axes }
    }

    /// The d-dimensional box `[0:shape0-1, 0:shape1-1, ...]`.
    pub fn with_shape(shape: &[u64]) -> Result<Minterval> {
        let bounds: Vec<(i64, i64)> = shape.iter().map(|&s| (0, s as i64 - 1)).collect();
        Minterval::new(&bounds)
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.axes.len()
    }

    /// Per-axis interval.
    pub fn axis(&self, i: usize) -> Interval {
        self.axes[i]
    }

    /// All axes.
    pub fn axes(&self) -> &[Interval] {
        &self.axes
    }

    /// Lower corner.
    pub fn lo(&self) -> Point {
        Point(self.axes.iter().map(|a| a.lo).collect())
    }

    /// Upper corner.
    pub fn hi(&self) -> Point {
        Point(self.axes.iter().map(|a| a.hi).collect())
    }

    /// Extent (number of positions) along each axis.
    pub fn shape(&self) -> Vec<u64> {
        self.axes.iter().map(|a| a.extent()).collect()
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> u64 {
        self.axes.iter().map(|a| a.extent()).product()
    }

    /// Whether the point lies inside.
    pub fn contains_point(&self, p: &Point) -> bool {
        p.dim() == self.dim() && self.axes.iter().zip(&p.0).all(|(a, &c)| a.contains(c))
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains(&self, other: &Minterval) -> bool {
        self.dim() == other.dim()
            && self
                .axes
                .iter()
                .zip(&other.axes)
                .all(|(a, b)| a.contains_interval(b))
    }

    /// Whether the two boxes share at least one cell.
    pub fn intersects(&self, other: &Minterval) -> bool {
        self.dim() == other.dim()
            && self
                .axes
                .iter()
                .zip(&other.axes)
                .all(|(a, b)| a.intersect(b).is_some())
    }

    /// Intersection box, if non-empty.
    pub fn intersection(&self, other: &Minterval) -> Option<Minterval> {
        if self.dim() != other.dim() {
            return None;
        }
        let mut axes = Vec::with_capacity(self.dim());
        for (a, b) in self.axes.iter().zip(&other.axes) {
            axes.push(a.intersect(b)?);
        }
        Some(Minterval { axes })
    }

    /// Smallest box covering both operands.
    pub fn hull(&self, other: &Minterval) -> Result<Minterval> {
        if self.dim() != other.dim() {
            return Err(ArrayError::DimensionMismatch {
                expected: self.dim(),
                got: other.dim(),
            });
        }
        Ok(Minterval {
            axes: self
                .axes
                .iter()
                .zip(&other.axes)
                .map(|(a, b)| a.hull(b))
                .collect(),
        })
    }

    /// Translate by an offset vector.
    pub fn translate(&self, offset: &Point) -> Result<Minterval> {
        if offset.dim() != self.dim() {
            return Err(ArrayError::DimensionMismatch {
                expected: self.dim(),
                got: offset.dim(),
            });
        }
        Ok(Minterval {
            axes: self
                .axes
                .iter()
                .zip(&offset.0)
                .map(|(a, &o)| Interval {
                    lo: a.lo + o,
                    hi: a.hi + o,
                })
                .collect(),
        })
    }

    /// Drop dimension `dim` (used by slicing). Result has dimensionality d-1.
    pub fn project_out(&self, dim: usize) -> Result<Minterval> {
        if dim >= self.dim() {
            return Err(ArrayError::BadSlice { dim, pos: 0 });
        }
        let mut axes = self.axes.clone();
        axes.remove(dim);
        Ok(Minterval { axes })
    }

    /// Linear offset of `p` within this box under row-major order.
    ///
    /// Row-major (a.k.a. C order, the RasDaMan default) means the **last**
    /// axis varies fastest.
    pub fn offset_of(&self, p: &Point) -> Result<usize> {
        if !self.contains_point(p) {
            return Err(ArrayError::OutOfDomain {
                point: p.0.clone(),
                domain: self.to_string(),
            });
        }
        let mut off: u64 = 0;
        for (a, &c) in self.axes.iter().zip(&p.0) {
            off = off * a.extent() + (c - a.lo) as u64;
        }
        Ok(off as usize)
    }

    /// Inverse of [`offset_of`](Self::offset_of): the point at row-major
    /// offset `off`.
    pub fn point_at(&self, mut off: u64) -> Point {
        let mut coords = vec![0i64; self.dim()];
        for i in (0..self.dim()).rev() {
            let e = self.axes[i].extent();
            coords[i] = self.axes[i].lo + (off % e) as i64;
            off /= e;
        }
        Point(coords)
    }

    /// Iterate over all points in row-major order.
    pub fn iter_points(&self) -> PointIter<'_> {
        PointIter {
            domain: self,
            next: 0,
            total: self.cell_count(),
        }
    }

    /// Volume of the intersection with `other`, in cells (0 if disjoint).
    pub fn overlap_cells(&self, other: &Minterval) -> u64 {
        self.intersection(other)
            .map(|m| m.cell_count())
            .unwrap_or(0)
    }

    /// Chebyshev (max-axis) distance between box centers; a cheap adjacency
    /// measure used by clustering heuristics.
    pub fn center_distance(&self, other: &Minterval) -> f64 {
        self.axes
            .iter()
            .zip(other.axes.iter())
            .map(|(a, b)| {
                let ca = (a.lo + a.hi) as f64 / 2.0;
                let cb = (b.lo + b.hi) as f64 / 2.0;
                (ca - cb).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Whether two boxes touch or overlap (are adjacent within `gap` cells
    /// along every axis). `gap = 1` means face/edge/corner adjacency.
    pub fn adjacent_within(&self, other: &Minterval, gap: i64) -> bool {
        self.dim() == other.dim()
            && self
                .axes
                .iter()
                .zip(&other.axes)
                .all(|(a, b)| a.lo - gap <= b.hi && b.lo - gap <= a.hi)
    }
}

impl fmt::Display for Minterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.axes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}:{}", a.lo, a.hi)?;
        }
        write!(f, "]")
    }
}

/// Iterator over the points of a [`Minterval`] in row-major order.
pub struct PointIter<'a> {
    domain: &'a Minterval,
    next: u64,
    total: u64,
}

impl Iterator for PointIter<'_> {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.next >= self.total {
            return None;
        }
        let p = self.domain.point_at(self.next);
        self.next += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.total - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for PointIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    #[test]
    fn interval_rejects_inverted_bounds() {
        assert!(Interval::new(3, 2).is_err());
        assert!(Interval::new(2, 2).is_ok());
    }

    #[test]
    fn extent_and_cell_count() {
        let m = mi(&[(0, 9), (5, 14), (-2, 2)]);
        assert_eq!(m.shape(), vec![10, 10, 5]);
        assert_eq!(m.cell_count(), 500);
    }

    #[test]
    fn containment_and_intersection() {
        let a = mi(&[(0, 9), (0, 9)]);
        let b = mi(&[(2, 4), (3, 7)]);
        assert!(a.contains(&b));
        assert!(!b.contains(&a));
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(b.clone()));
        let c = mi(&[(20, 30), (0, 9)]);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
        assert_eq!(a.overlap_cells(&b), 3 * 5);
    }

    #[test]
    fn hull_covers_both() {
        let a = mi(&[(0, 4), (10, 20)]);
        let b = mi(&[(3, 9), (0, 5)]);
        let h = a.hull(&b).unwrap();
        assert_eq!(h, mi(&[(0, 9), (0, 20)]));
        assert!(h.contains(&a) && h.contains(&b));
    }

    #[test]
    fn offsets_roundtrip_row_major() {
        let m = mi(&[(1, 3), (10, 12)]);
        // row-major: last axis fastest
        assert_eq!(m.offset_of(&Point::new(vec![1, 10])).unwrap(), 0);
        assert_eq!(m.offset_of(&Point::new(vec![1, 11])).unwrap(), 1);
        assert_eq!(m.offset_of(&Point::new(vec![2, 10])).unwrap(), 3);
        for off in 0..m.cell_count() {
            let p = m.point_at(off);
            assert_eq!(m.offset_of(&p).unwrap() as u64, off);
        }
    }

    #[test]
    fn point_iteration_matches_cell_count() {
        let m = mi(&[(0, 2), (0, 1), (5, 6)]);
        let pts: Vec<Point> = m.iter_points().collect();
        assert_eq!(pts.len(), m.cell_count() as usize);
        assert_eq!(pts[0], Point::new(vec![0, 0, 5]));
        assert_eq!(pts[1], Point::new(vec![0, 0, 6]));
        assert_eq!(*pts.last().unwrap(), Point::new(vec![2, 1, 6]));
    }

    #[test]
    fn translation_moves_bounds() {
        let m = mi(&[(0, 4), (0, 4)]);
        let t = m.translate(&Point::new(vec![10, -2])).unwrap();
        assert_eq!(t, mi(&[(10, 14), (-2, 2)]));
    }

    #[test]
    fn slicing_projects_out_axis() {
        let m = mi(&[(0, 4), (5, 9), (10, 19)]);
        let s = m.project_out(1).unwrap();
        assert_eq!(s, mi(&[(0, 4), (10, 19)]));
        assert!(m.project_out(3).is_err());
    }

    #[test]
    fn adjacency() {
        let a = mi(&[(0, 4), (0, 4)]);
        let b = mi(&[(5, 9), (0, 4)]); // face-adjacent
        let c = mi(&[(6, 9), (0, 4)]); // one-cell gap
        assert!(a.adjacent_within(&b, 1));
        assert!(!a.adjacent_within(&c, 1));
        assert!(a.adjacent_within(&c, 2));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = mi(&[(0, 4)]);
        let b = mi(&[(0, 4), (0, 4)]);
        assert!(!a.intersects(&b));
        assert!(a.hull(&b).is_err());
    }
}
