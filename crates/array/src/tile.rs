//! Tiles — the DBMS storage unit — and their binary codec.
//!
//! A tile is an `MDArray` restricted to a tile domain, together with the id
//! of the object it belongs to. Tiles are serialized into self-describing
//! binary blobs (the format written into RDBMS BLOBs and into super-tiles on
//! tape); the codec is deliberately fixed-layout so that offsets within
//! super-tiles can be computed without parsing cell data.
//!
//! Two decode paths exist: [`Tile::decode`] copies the payload into an
//! owned buffer, while [`Tile::decode_shared`] borrows a refcounted
//! sub-range of the encoded buffer — the zero-copy path used when cutting
//! member tiles out of a staged super-tile.

use crate::domain::Minterval;
use crate::error::{ArrayError, Result};
use crate::mdd::MDArray;
use crate::value::CellType;
use bytes::{Bytes, BytesMut};

/// Identifier of an MDD object within the DBMS.
pub type ObjectId = u64;

/// Identifier of a tile (unique per database).
pub type TileId = u64;

/// A stored tile: payload plus identity.
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    /// Unique tile id.
    pub id: TileId,
    /// Owning MDD object.
    pub object: ObjectId,
    /// Cell payload covering the tile's domain.
    pub data: MDArray,
}

/// Parsed fixed header of an encoded tile.
struct TileHeader {
    id: TileId,
    object: ObjectId,
    cell_type: CellType,
    domain: Minterval,
    /// Offset of the payload within the encoded buffer.
    payload_off: usize,
    payload_len: usize,
}

impl TileHeader {
    /// Total encoded length (header + payload).
    fn encoded_len(&self) -> usize {
        self.payload_off + self.payload_len
    }

    fn parse(buf: &[u8]) -> Result<TileHeader> {
        let need = |n: usize| -> Result<()> {
            if buf.len() < n {
                Err(ArrayError::Codec(format!(
                    "tile truncated: need {n} bytes, have {}",
                    buf.len()
                )))
            } else {
                Ok(())
            }
        };
        need(4 + 8 + 8 + 2)?;
        if &buf[0..4] != MAGIC {
            return Err(ArrayError::Codec("bad tile magic".into()));
        }
        let id = u64::from_le_bytes(buf[4..12].try_into().unwrap());
        let object = u64::from_le_bytes(buf[12..20].try_into().unwrap());
        let cell_type = CellType::from_tag(buf[20])
            .ok_or_else(|| ArrayError::Codec(format!("bad cell type tag {}", buf[20])))?;
        let d = buf[21] as usize;
        need(Tile::header_len(d))?;
        let mut bounds = Vec::with_capacity(d);
        let mut off = 22;
        for _ in 0..d {
            let lo = i64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
            let hi = i64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap());
            bounds.push((lo, hi));
            off += 16;
        }
        let payload_len = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()) as usize;
        off += 8;
        need(off + payload_len)?;
        let domain = Minterval::new(&bounds)
            .map_err(|e| ArrayError::Codec(format!("bad tile domain: {e}")))?;
        Ok(TileHeader {
            id,
            object,
            cell_type,
            domain,
            payload_off: off,
            payload_len,
        })
    }
}

impl Tile {
    /// Create a tile.
    pub fn new(id: TileId, object: ObjectId, data: MDArray) -> Tile {
        Tile { id, object, data }
    }

    /// The tile's spatial domain.
    pub fn domain(&self) -> &Minterval {
        self.data.domain()
    }

    /// Payload size in bytes (cell data only).
    pub fn payload_bytes(&self) -> u64 {
        self.data.size_bytes()
    }

    /// Encoded size in bytes (header + cell data). Header layout:
    ///
    /// ```text
    /// magic          u32   "HTIL"
    /// tile id        u64
    /// object id      u64
    /// cell type tag  u8
    /// dimensionality u8
    /// (lo, hi) pairs i64 * 2d
    /// payload bytes  u64
    /// payload        [u8]
    /// ```
    pub fn encoded_len(&self) -> usize {
        Self::header_len(self.domain().dim()) + self.data.bytes().len()
    }

    /// Length of the fixed header for dimensionality `d`.
    pub fn header_len(d: usize) -> usize {
        4 + 8 + 8 + 1 + 1 + 16 * d + 8
    }

    /// Serialize by appending to an existing buffer — lets a super-tile
    /// pack N tiles into one allocation with no intermediate buffers.
    pub fn encode_into(&self, out: &mut BytesMut) {
        out.reserve(self.encoded_len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.object.to_le_bytes());
        out.put_u8(self.data.cell_type().tag());
        out.put_u8(self.domain().dim() as u8);
        for ax in self.domain().axes() {
            out.extend_from_slice(&ax.lo.to_le_bytes());
            out.extend_from_slice(&ax.hi.to_le_bytes());
        }
        out.extend_from_slice(&(self.data.bytes().len() as u64).to_le_bytes());
        out.extend_from_slice(self.data.bytes());
    }

    /// Serialize into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out.freeze()
    }

    /// Deserialize from a buffer into an *owned* tile (the payload is
    /// copied out); returns the tile and the number of bytes consumed (so
    /// multiple tiles can be read back-to-back).
    pub fn decode(buf: &[u8]) -> Result<(Tile, usize)> {
        let h = TileHeader::parse(buf)?;
        let data = MDArray::from_bytes(
            h.domain,
            h.cell_type,
            buf[h.payload_off..h.payload_off + h.payload_len].to_vec(),
        )
        .map_err(|e| ArrayError::Codec(format!("bad tile payload: {e}")))?;
        Ok((
            Tile {
                id: h.id,
                object: h.object,
                data,
            },
            h.payload_off + h.payload_len,
        ))
    }

    /// Deserialize the tile starting at `at` in a shared buffer **without
    /// copying the payload**: the tile's `MDArray` borrows a refcounted
    /// sub-range of `buf` (copy-on-write on mutation). Returns the tile
    /// and the number of bytes consumed.
    pub fn decode_shared(buf: &Bytes, at: usize) -> Result<(Tile, usize)> {
        let h = TileHeader::parse(&buf[at..])?;
        let used = h.encoded_len();
        let payload = buf.slice(at + h.payload_off..at + h.payload_off + h.payload_len);
        let data = MDArray::from_shared(h.domain, h.cell_type, payload)
            .map_err(|e| ArrayError::Codec(format!("bad tile payload: {e}")))?;
        Ok((
            Tile {
                id: h.id,
                object: h.object,
                data,
            },
            used,
        ))
    }
}

const MAGIC: &[u8; 4] = b"HTIL";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::CellType;

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    fn sample_tile() -> Tile {
        let data = MDArray::generate(mi(&[(4, 7), (10, 12)]), CellType::I16, |p| {
            (p.coord(0) - p.coord(1)) as f64
        });
        Tile::new(42, 7, data)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample_tile();
        let enc = t.encode();
        assert_eq!(enc.len(), t.encoded_len());
        let (dec, used) = Tile::decode(&enc).unwrap();
        assert_eq!(used, enc.len());
        assert_eq!(dec, t);
    }

    #[test]
    fn back_to_back_tiles_decode() {
        let t1 = sample_tile();
        let data2 = MDArray::generate(mi(&[(0, 1)]), CellType::F64, |p| p.coord(0) as f64 * 0.5);
        let t2 = Tile::new(43, 7, data2);
        let mut buf = BytesMut::new();
        t1.encode_into(&mut buf);
        t2.encode_into(&mut buf);
        let buf = buf.freeze();
        let (d1, n1) = Tile::decode(&buf).unwrap();
        let (d2, n2) = Tile::decode(&buf[n1..]).unwrap();
        assert_eq!(d1, t1);
        assert_eq!(d2, t2);
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn decode_shared_matches_owned_and_borrows() {
        let t1 = sample_tile();
        let t2 = {
            let data = MDArray::generate(mi(&[(0, 1)]), CellType::F64, |p| p.coord(0) as f64);
            Tile::new(43, 7, data)
        };
        let mut buf = BytesMut::new();
        t1.encode_into(&mut buf);
        t2.encode_into(&mut buf);
        let buf = buf.freeze();
        let (s1, n1) = Tile::decode_shared(&buf, 0).unwrap();
        let (s2, n2) = Tile::decode_shared(&buf, n1).unwrap();
        assert_eq!(s1, t1);
        assert_eq!(s2, t2);
        assert_eq!(n1 + n2, buf.len());
        assert!(s1.data.is_shared() && s2.data.is_shared());
        // The shared payload aliases the encoded buffer, no copy was made.
        let h = s1.data.shared_bytes().unwrap();
        let expect = &buf[n1 - t1.payload_bytes() as usize..n1];
        assert_eq!(h.as_slice().as_ptr(), expect.as_ptr());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Tile::decode(b"nope").is_err());
        let mut enc = sample_tile().encode().to_vec();
        enc[0] = b'X';
        assert!(Tile::decode(&enc).is_err());
        // truncated payload
        let enc = sample_tile().encode();
        assert!(Tile::decode(&enc[..enc.len() - 1]).is_err());
        assert!(Tile::decode_shared(&enc.slice(0..enc.len() - 1), 0).is_err());
    }

    #[test]
    fn header_len_matches_encoding() {
        let t = sample_tile();
        let enc = t.encode();
        assert_eq!(enc.len(), Tile::header_len(2) + t.payload_bytes() as usize);
    }
}
