//! Array operations: trimming, slicing, induced operations and condensers.
//!
//! These mirror the RasDaMan algebra subset the paper's workloads use
//! (§2.6.5): geometric operations that shrink domains, cell-wise *induced*
//! operations, and *condensers* (aggregations). HEAVEN's precomputed-result
//! catalog (§3.9) memoizes condenser results.

use crate::domain::{Minterval, Point};
use crate::error::{ArrayError, Result};
use crate::mdd::MDArray;
use crate::value::{with_scalar, CellType, CellValue, Scalar};

/// Trim: restrict the array to a sub-box (dimensionality preserved).
pub fn trim(a: &MDArray, region: &Minterval) -> Result<MDArray> {
    a.extract(region)
}

/// Slice: fix dimension `dim` to position `pos`; the result has
/// dimensionality d-1.
pub fn slice(a: &MDArray, dim: usize, pos: i64) -> Result<MDArray> {
    let dom = a.domain();
    if dim >= dom.dim() {
        return Err(ArrayError::BadSlice { dim, pos });
    }
    if !dom.axis(dim).contains(pos) {
        return Err(ArrayError::BadSlice { dim, pos });
    }
    let out_dom = dom.project_out(dim)?;
    let mut out = MDArray::zeros(out_dom.clone(), a.cell_type());
    for (i, p) in out_dom.iter_points().enumerate() {
        let mut full = p.0.clone();
        full.insert(dim, pos);
        let v = a.get(&Point::new(full))?;
        v.write_at(&mut out, i)?;
    }
    Ok(out)
}

trait WriteAt {
    fn write_at(self, arr: &mut MDArray, index: usize) -> Result<()>;
}

impl WriteAt for CellValue {
    fn write_at(self, arr: &mut MDArray, index: usize) -> Result<()> {
        let p = arr.domain().point_at(index as u64);
        arr.set(&p, self.as_f64())
    }
}

/// A unary induced operation applied cell-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Square root (result is float).
    Sqrt,
    /// Cast to another cell type.
    Cast(CellType),
}

impl UnaryOp {
    /// Result cell type for an input of type `t`.
    pub fn result_type(self, t: CellType) -> CellType {
        match self {
            UnaryOp::Neg | UnaryOp::Abs => t,
            UnaryOp::Sqrt => {
                if t == CellType::F64 {
                    CellType::F64
                } else {
                    CellType::F32
                }
            }
            UnaryOp::Cast(to) => to,
        }
    }

    fn apply(self, v: f64) -> f64 {
        match self {
            UnaryOp::Neg => -v,
            UnaryOp::Abs => v.abs(),
            UnaryOp::Sqrt => v.sqrt(),
            UnaryOp::Cast(_) => v,
        }
    }
}

/// Map every cell of `src` through `f`, reading as `S` and writing as
/// `O` — one monomorphized pass over the contiguous buffers, no per-cell
/// bounds checks or enum boxing.
fn map_cells<S: Scalar, O: Scalar>(src: &[u8], dst: &mut [u8], f: impl Fn(f64) -> f64) {
    for (sb, db) in src.chunks_exact(S::SIZE).zip(dst.chunks_exact_mut(O::SIZE)) {
        O::from_f64(f(S::from_le(sb).to_f64())).write_le(db);
    }
}

/// Apply a unary induced operation.
pub fn induced_unary(a: &MDArray, op: UnaryOp) -> MDArray {
    let out_ty = op.result_type(a.cell_type());
    let n = a.domain().cell_count() as usize;
    let mut out = vec![0u8; n * out_ty.size_bytes()];
    with_scalar!(a.cell_type(), S, {
        with_scalar!(out_ty, O, {
            map_cells::<S, O>(a.bytes(), &mut out, |v| op.apply(v));
        })
    });
    MDArray::from_bytes(a.domain().clone(), out_ty, out).expect("buffer sized for domain")
}

/// A binary induced operation applied cell-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Cell-wise addition.
    Add,
    /// Cell-wise subtraction.
    Sub,
    /// Cell-wise multiplication.
    Mul,
    /// Cell-wise division (errors on a zero divisor).
    Div,
    /// Cell-wise minimum.
    Min,
    /// Cell-wise maximum.
    Max,
    /// Less-than comparison producing a 0/1 `octet` mask.
    Lt,
    /// Less-or-equal comparison mask.
    Le,
    /// Greater-than comparison mask.
    Gt,
    /// Greater-or-equal comparison mask.
    Ge,
    /// Equality comparison mask.
    Eq,
    /// Inequality comparison mask.
    Ne,
}

impl BinaryOp {
    /// Whether the operation yields a boolean (0/1) mask.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge | BinaryOp::Eq | BinaryOp::Ne
        )
    }

    /// Result type for operand types `l`, `r`.
    pub fn result_type(self, l: CellType, r: CellType) -> CellType {
        if self.is_comparison() {
            CellType::U8
        } else {
            l.promote(r)
        }
    }

    fn apply(self, a: f64, b: f64) -> Result<f64> {
        Ok(match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => {
                if b == 0.0 {
                    return Err(ArrayError::DivisionByZero);
                }
                a / b
            }
            BinaryOp::Min => a.min(b),
            BinaryOp::Max => a.max(b),
            BinaryOp::Lt => (a < b) as u8 as f64,
            BinaryOp::Le => (a <= b) as u8 as f64,
            BinaryOp::Gt => (a > b) as u8 as f64,
            BinaryOp::Ge => (a >= b) as u8 as f64,
            BinaryOp::Eq => (a == b) as u8 as f64,
            BinaryOp::Ne => (a != b) as u8 as f64,
        })
    }
}

/// Apply a binary induced operation between two arrays.
///
/// The operation is evaluated over the *intersection* of the operand domains
/// (RasDaMan requires equal domains; evaluating on the intersection is the
/// common generalization and errors when the intersection is empty).
pub fn induced_binary(a: &MDArray, b: &MDArray, op: BinaryOp) -> Result<MDArray> {
    let dom = a
        .domain()
        .intersection(b.domain())
        .ok_or(ArrayError::Empty("operand domain intersection"))?;
    let out_ty = op.result_type(a.cell_type(), b.cell_type());
    if &dom == a.domain() && a.domain() == b.domain() {
        // Equal domains (the RasDaMan-conformant case): both buffers are
        // aligned cell-for-cell, so run one typed pass instead of a
        // per-point domain walk.
        let n = dom.cell_count() as usize;
        let mut out = vec![0u8; n * out_ty.size_bytes()];
        with_scalar!(a.cell_type(), S, {
            with_scalar!(b.cell_type(), T, {
                with_scalar!(out_ty, O, {
                    zip_cells::<S, T, O>(a.bytes(), b.bytes(), &mut out, op)?;
                })
            })
        });
        return MDArray::from_bytes(dom, out_ty, out);
    }
    let mut out = MDArray::zeros(dom.clone(), out_ty);
    for p in dom.iter_points() {
        let v = op.apply(a.get_f64(&p)?, b.get_f64(&p)?)?;
        out.set(&p, v)?;
    }
    Ok(out)
}

/// Aligned cell-for-cell binary pass; errors out (leaving `dst` partial,
/// which the caller discards) on a zero divisor.
fn zip_cells<S: Scalar, T: Scalar, O: Scalar>(
    a: &[u8],
    b: &[u8],
    dst: &mut [u8],
    op: BinaryOp,
) -> Result<()> {
    for ((ab, bb), db) in a
        .chunks_exact(S::SIZE)
        .zip(b.chunks_exact(T::SIZE))
        .zip(dst.chunks_exact_mut(O::SIZE))
    {
        let v = op.apply(S::from_le(ab).to_f64(), T::from_le(bb).to_f64())?;
        O::from_f64(v).write_le(db);
    }
    Ok(())
}

/// Apply a binary induced operation between an array and a scalar.
pub fn induced_scalar(a: &MDArray, scalar: f64, op: BinaryOp) -> Result<MDArray> {
    let out_ty = op.result_type(a.cell_type(), a.cell_type());
    if op == BinaryOp::Div && scalar == 0.0 {
        // The divisor is the same for every cell; fail before the pass
        // like the per-point path failed on the first cell.
        return Err(ArrayError::DivisionByZero);
    }
    let n = a.domain().cell_count() as usize;
    let mut out = vec![0u8; n * out_ty.size_bytes()];
    with_scalar!(a.cell_type(), S, {
        with_scalar!(out_ty, O, {
            map_cells::<S, O>(a.bytes(), &mut out, |v| {
                op.apply(v, scalar).expect("divisor checked nonzero")
            });
        })
    });
    MDArray::from_bytes(a.domain().clone(), out_ty, out)
}

/// A condenser (aggregation over all cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Condenser {
    /// Sum of all cells (`add_cells`).
    Sum,
    /// Arithmetic mean (`avg_cells`).
    Avg,
    /// Minimum cell (`min_cells`).
    Min,
    /// Maximum cell (`max_cells`).
    Max,
    /// Count of non-zero cells (`count_cells`).
    CountNonZero,
}

impl Condenser {
    /// Parse the query-language name (`add_cells`, `avg_cells`, ...).
    pub fn parse(name: &str) -> Option<Condenser> {
        match name {
            "add_cells" | "sum" => Some(Condenser::Sum),
            "avg_cells" | "avg" => Some(Condenser::Avg),
            "min_cells" | "min" => Some(Condenser::Min),
            "max_cells" | "max" => Some(Condenser::Max),
            "count_cells" | "count" => Some(Condenser::CountNonZero),
            _ => None,
        }
    }

    /// Query-language name.
    pub fn name(self) -> &'static str {
        match self {
            Condenser::Sum => "add_cells",
            Condenser::Avg => "avg_cells",
            Condenser::Min => "min_cells",
            Condenser::Max => "max_cells",
            Condenser::CountNonZero => "count_cells",
        }
    }

    /// Evaluate over a whole array.
    ///
    /// Runs a monomorphized fold over the contiguous cell buffer (see
    /// [`condense_typed`]); accumulation order and f64 widening are
    /// identical to the old per-point walk, so results are bit-exact.
    pub fn eval(self, a: &MDArray) -> Result<f64> {
        let n = a.domain().cell_count();
        if n == 0 {
            return Err(ArrayError::Empty("condenser input"));
        }
        let mut acc = with_scalar!(a.cell_type(), S, { condense_typed::<S>(self, a.bytes()) });
        if self == Condenser::Avg {
            acc /= n as f64;
        }
        Ok(acc)
    }

    /// Combine per-partition partial results into the final result.
    ///
    /// `parts` are `(partial_value, cell_count)` pairs — this is what makes
    /// condensers computable tile-by-tile (and memoizable per region in the
    /// precomputed-result catalog): Sum/Min/Max/Count combine directly, Avg
    /// combines via the weighted mean.
    pub fn combine(self, parts: &[(f64, u64)]) -> Result<f64> {
        if parts.is_empty() {
            return Err(ArrayError::Empty("condenser partials"));
        }
        Ok(match self {
            Condenser::Sum | Condenser::CountNonZero => parts.iter().map(|&(v, _)| v).sum(),
            Condenser::Min => parts.iter().map(|&(v, _)| v).fold(f64::INFINITY, f64::min),
            Condenser::Max => parts
                .iter()
                .map(|&(v, _)| v)
                .fold(f64::NEG_INFINITY, f64::max),
            Condenser::Avg => {
                let total: u64 = parts.iter().map(|&(_, n)| n).sum();
                if total == 0 {
                    return Err(ArrayError::Empty("condenser partials"));
                }
                parts.iter().map(|&(v, n)| v * n as f64).sum::<f64>() / total as f64
            }
        })
    }
}

/// Sequential typed fold over a raw cell buffer — the condenser hot
/// loop. `chunks_exact` lets the compiler drop per-cell bounds checks
/// and vectorize the widen-and-accumulate.
fn condense_typed<S: Scalar>(c: Condenser, buf: &[u8]) -> f64 {
    let vals = buf.chunks_exact(S::SIZE).map(|b| S::from_le(b).to_f64());
    match c {
        Condenser::Sum | Condenser::Avg => vals.fold(0.0, |acc, x| acc + x),
        Condenser::Min => vals.fold(f64::INFINITY, f64::min),
        Condenser::Max => vals.fold(f64::NEG_INFINITY, f64::max),
        Condenser::CountNonZero => vals.fold(0.0, |acc, x| if x != 0.0 { acc + 1.0 } else { acc }),
    }
}

/// Sum of all cells of a raw typed buffer (backs [`MDArray::sum`]).
pub(crate) fn sum_cells(cell_type: CellType, buf: &[u8]) -> f64 {
    with_scalar!(cell_type, S, { condense_typed::<S>(Condenser::Sum, buf) })
}

/// Scale (downsample) an array by integer `factors` per axis: each result
/// cell is the average of the corresponding block of source cells (blocks
/// at the upper border may be partial). The result domain is normalized to
/// a zero origin with `ceil(extent / factor)` cells per axis — RasDaMan's
/// `scale()` used for overview products.
pub fn scale_down(a: &MDArray, factors: &[u64]) -> Result<MDArray> {
    let dom = a.domain();
    let d = dom.dim();
    if factors.len() != d {
        return Err(ArrayError::DimensionMismatch {
            expected: d,
            got: factors.len(),
        });
    }
    if factors.contains(&0) {
        return Err(ArrayError::Empty("scale factor"));
    }
    let out_shape: Vec<u64> = dom
        .shape()
        .iter()
        .zip(factors)
        .map(|(&e, &f)| e.div_ceil(f))
        .collect();
    let out_dom = Minterval::with_shape(&out_shape)?;
    let mut out = MDArray::zeros(out_dom.clone(), a.cell_type());
    for op in out_dom.iter_points() {
        // source block for this output cell
        let mut axes = Vec::with_capacity(d);
        for (i, &f) in factors.iter().enumerate() {
            let lo = dom.axis(i).lo + op.coord(i) * f as i64;
            let hi = (lo + f as i64 - 1).min(dom.axis(i).hi);
            axes.push(crate::domain::Interval::new(lo, hi)?);
        }
        let block = Minterval::from_intervals(axes);
        let mut acc = 0.0;
        for p in block.iter_points() {
            acc += a.get_f64(&p)?;
        }
        out.set(&op, acc / block.cell_count() as f64)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Point;

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    fn ramp2d() -> MDArray {
        MDArray::generate(mi(&[(0, 3), (0, 3)]), CellType::I32, |p| {
            (p.coord(0) * 4 + p.coord(1)) as f64
        })
    }

    #[test]
    fn trim_restricts_domain() {
        let a = ramp2d();
        let t = trim(&a, &mi(&[(1, 2), (1, 2)])).unwrap();
        assert_eq!(t.domain(), &mi(&[(1, 2), (1, 2)]));
        assert_eq!(t.sum(), (5 + 6 + 9 + 10) as f64);
    }

    #[test]
    fn slice_reduces_dimensionality() {
        let a = ramp2d();
        let s = slice(&a, 0, 2).unwrap();
        assert_eq!(s.domain(), &mi(&[(0, 3)]));
        assert_eq!(s.sum(), (8 + 9 + 10 + 11) as f64);
        let s2 = slice(&a, 1, 0).unwrap();
        assert_eq!(s2.sum(), (4 + 8 + 12) as f64);
    }

    #[test]
    fn slice_rejects_bad_position() {
        let a = ramp2d();
        assert!(slice(&a, 0, 9).is_err());
        assert!(slice(&a, 5, 0).is_err());
    }

    #[test]
    fn induced_unary_ops() {
        let a = ramp2d();
        let n = induced_unary(&a, UnaryOp::Neg);
        assert_eq!(n.sum(), -a.sum());
        let abs = induced_unary(&n, UnaryOp::Abs);
        assert_eq!(abs.sum(), a.sum());
        let c = induced_unary(&a, UnaryOp::Cast(CellType::F64));
        assert_eq!(c.cell_type(), CellType::F64);
        assert_eq!(c.sum(), a.sum());
    }

    #[test]
    fn induced_binary_on_intersection() {
        let a = MDArray::generate(mi(&[(0, 3), (0, 3)]), CellType::I32, |_| 10.0);
        let b = MDArray::generate(mi(&[(2, 5), (2, 5)]), CellType::I32, |_| 4.0);
        let s = induced_binary(&a, &b, BinaryOp::Sub).unwrap();
        assert_eq!(s.domain(), &mi(&[(2, 3), (2, 3)]));
        assert_eq!(s.sum(), 6.0 * 4.0);
        let disjoint = MDArray::zeros(mi(&[(10, 11), (10, 11)]), CellType::I32);
        assert!(induced_binary(&a, &disjoint, BinaryOp::Add).is_err());
    }

    #[test]
    fn comparison_produces_mask() {
        let a = ramp2d();
        let m = induced_scalar(&a, 8.0, BinaryOp::Ge).unwrap();
        assert_eq!(m.cell_type(), CellType::U8);
        assert_eq!(m.sum(), 8.0); // cells 8..15
    }

    #[test]
    fn division_by_zero_is_error() {
        let a = ramp2d();
        assert!(induced_scalar(&a, 0.0, BinaryOp::Div).is_err());
        let z = MDArray::zeros(mi(&[(0, 3), (0, 3)]), CellType::I32);
        assert!(induced_binary(&a, &z, BinaryOp::Div).is_err());
    }

    #[test]
    fn condensers_match_direct_computation() {
        let a = ramp2d(); // values 0..=15
        assert_eq!(Condenser::Sum.eval(&a).unwrap(), 120.0);
        assert_eq!(Condenser::Avg.eval(&a).unwrap(), 7.5);
        assert_eq!(Condenser::Min.eval(&a).unwrap(), 0.0);
        assert_eq!(Condenser::Max.eval(&a).unwrap(), 15.0);
        assert_eq!(Condenser::CountNonZero.eval(&a).unwrap(), 15.0);
    }

    #[test]
    fn condenser_combine_matches_whole() {
        let a = ramp2d();
        let left = trim(&a, &mi(&[(0, 3), (0, 1)])).unwrap();
        let right = trim(&a, &mi(&[(0, 3), (2, 3)])).unwrap();
        for c in [
            Condenser::Sum,
            Condenser::Avg,
            Condenser::Min,
            Condenser::Max,
            Condenser::CountNonZero,
        ] {
            let whole = c.eval(&a).unwrap();
            let parts = vec![
                (c.eval(&left).unwrap(), left.domain().cell_count()),
                (c.eval(&right).unwrap(), right.domain().cell_count()),
            ];
            let combined = c.combine(&parts).unwrap();
            assert!(
                (whole - combined).abs() < 1e-9,
                "{c:?}: whole {whole} vs combined {combined}"
            );
        }
    }

    #[test]
    fn scale_down_averages_blocks() {
        let a = MDArray::generate(mi(&[(0, 3), (0, 3)]), CellType::F64, |p| {
            (p.coord(0) * 4 + p.coord(1)) as f64
        });
        let s = scale_down(&a, &[2, 2]).unwrap();
        assert_eq!(s.domain(), &mi(&[(0, 1), (0, 1)]));
        // top-left block: cells 0,1,4,5 -> mean 2.5
        assert_eq!(s.get_f64(&Point::new(vec![0, 0])).unwrap(), 2.5);
        // bottom-right block: 10,11,14,15 -> 12.5
        assert_eq!(s.get_f64(&Point::new(vec![1, 1])).unwrap(), 12.5);
    }

    #[test]
    fn scale_down_handles_partial_border_blocks() {
        let a = MDArray::generate(mi(&[(0, 4)]), CellType::F64, |p| p.coord(0) as f64);
        let s = scale_down(&a, &[2]).unwrap();
        assert_eq!(s.domain().cell_count(), 3);
        assert_eq!(s.get_f64(&Point::new(vec![0])).unwrap(), 0.5);
        assert_eq!(s.get_f64(&Point::new(vec![2])).unwrap(), 4.0); // lone cell
    }

    #[test]
    fn scale_down_normalizes_origin_and_validates() {
        let a = MDArray::generate(mi(&[(10, 13), (20, 23)]), CellType::I32, |_| 8.0);
        let s = scale_down(&a, &[2, 2]).unwrap();
        assert_eq!(s.domain(), &mi(&[(0, 1), (0, 1)]));
        assert_eq!(s.sum(), 32.0);
        assert!(scale_down(&a, &[2]).is_err());
        assert!(scale_down(&a, &[0, 2]).is_err());
    }

    #[test]
    fn condenser_names_roundtrip() {
        for c in [
            Condenser::Sum,
            Condenser::Avg,
            Condenser::Min,
            Condenser::Max,
            Condenser::CountNonZero,
        ] {
            assert_eq!(Condenser::parse(c.name()), Some(c));
        }
        assert_eq!(Condenser::parse("median_cells"), None);
    }
}
