//! Linearization orders for multidimensional cells and tiles.
//!
//! Clustering data on a linear medium (a tape!) requires mapping the
//! d-dimensional tile grid onto a sequence. HEAVEN's intra- and
//! inter-super-tile clustering (paper §3.4.2) orders tiles along such a
//! linearization so that spatially close tiles end up physically close on
//! the medium. We provide row-major, column-major, Z-order (Morton) and
//! Hilbert curves, plus *directional* orders that prioritize a preferred
//! access axis (eSTAR, §3.3.3).

use crate::domain::Point;

/// A linearization order over grid coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinearOrder {
    /// Last axis varies fastest (C order) — RasDaMan's storage default.
    RowMajor,
    /// First axis varies fastest (Fortran order).
    ColMajor,
    /// Morton / Z-order: bit-interleaved coordinates; good locality at all
    /// scales with a cheap computation.
    ZOrder,
    /// Hilbert curve: best spatial locality; slightly costlier to compute.
    Hilbert,
    /// Nested order with `axis` varying fastest — models a dominant access
    /// direction (e.g. time-series reads along the time axis).
    Directional {
        /// The axis that varies fastest.
        axis: usize,
    },
}

impl LinearOrder {
    /// Sort key of grid cell `coords` within a grid of shape `shape`.
    ///
    /// Keys are comparable only between points of the same grid.
    pub fn key(&self, coords: &[u64], shape: &[u64]) -> u128 {
        debug_assert_eq!(coords.len(), shape.len());
        match self {
            LinearOrder::RowMajor => {
                let mut k: u128 = 0;
                for (c, s) in coords.iter().zip(shape) {
                    k = k * (*s as u128) + (*c as u128);
                }
                k
            }
            LinearOrder::ColMajor => {
                let mut k: u128 = 0;
                for (c, s) in coords.iter().zip(shape).rev() {
                    k = k * (*s as u128) + (*c as u128);
                }
                k
            }
            LinearOrder::ZOrder => morton_key(coords),
            LinearOrder::Hilbert => hilbert_key(coords, shape),
            LinearOrder::Directional { axis } => {
                // The preferred axis becomes the innermost (fastest) loop.
                let a = (*axis).min(coords.len() - 1);
                let mut k: u128 = 0;
                for (i, (c, s)) in coords.iter().zip(shape).enumerate() {
                    if i == a {
                        continue;
                    }
                    k = k * (*s as u128) + (*c as u128);
                }
                k * (shape[a] as u128) + coords[a] as u128
            }
        }
    }

    /// Sort grid coordinates (each paired with a payload index) in place.
    pub fn sort_indices(&self, coords: &[Vec<u64>], shape: &[u64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..coords.len()).collect();
        idx.sort_by_key(|&i| self.key(&coords[i], shape));
        idx
    }

    /// Order the lower corners of arbitrary boxes: maps each point's
    /// coordinates (shifted to non-negative) to a key. Used when tiles are
    /// not on a regular grid.
    pub fn key_for_point(&self, p: &Point, origin: &Point, shape: &[u64]) -> u128 {
        let coords: Vec<u64> =
            p.0.iter()
                .zip(&origin.0)
                .map(|(&c, &o)| (c - o).max(0) as u64)
                .collect();
        self.key(&coords, shape)
    }
}

/// Morton (Z-order) key: interleave the bits of all coordinates.
fn morton_key(coords: &[u64]) -> u128 {
    let d = coords.len();
    if d == 0 {
        return 0;
    }
    // Find highest bit used.
    let max_bits = coords
        .iter()
        .map(|c| 64 - c.leading_zeros() as usize)
        .max()
        .unwrap_or(0)
        .max(1);
    let usable_bits = (128 / d).min(max_bits);
    let mut key: u128 = 0;
    for bit in (0..usable_bits).rev() {
        for &c in coords {
            key = (key << 1) | (((c >> bit) & 1) as u128);
        }
    }
    key
}

/// Hilbert key via the standard transpose algorithm (Skilling's method),
/// generalized to d dimensions.
fn hilbert_key(coords: &[u64], shape: &[u64]) -> u128 {
    let d = coords.len();
    if d == 0 {
        return 0;
    }
    if d == 1 {
        return coords[0] as u128;
    }
    // Bits needed per axis.
    let bits = shape
        .iter()
        .map(|&s| 64 - (s.max(1) - 1).leading_zeros() as usize)
        .max()
        .unwrap_or(1)
        .max(1)
        .min(128 / d);

    let mut x: Vec<u64> = coords.to_vec();

    // Inverse undo excess work (Skilling transform: axes -> transposed Hilbert).
    let m = 1u64 << (bits - 1);
    // Inverse undo
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..d {
            if x[i] & q != 0 {
                x[0] ^= p; // invert
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode
    for i in 1..d {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u64;
    let mut q = m;
    while q > 1 {
        if x[d - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }

    // Interleave transposed bits into a single key (axis 0 contributes the
    // most significant bit of each group).
    let mut key: u128 = 0;
    for bit in (0..bits).rev() {
        for xi in x.iter() {
            key = (key << 1) | (((xi >> bit) & 1) as u128);
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn row_major_matches_linear_offset() {
        let shape = [3u64, 4];
        let mut keys = Vec::new();
        for a in 0..3u64 {
            for b in 0..4u64 {
                keys.push(LinearOrder::RowMajor.key(&[a, b], &shape));
            }
        }
        let expect: Vec<u128> = (0..12u128).collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn col_major_reverses_axis_priority() {
        let shape = [3u64, 4];
        // column-major: first axis fastest
        let k00 = LinearOrder::ColMajor.key(&[0, 0], &shape);
        let k10 = LinearOrder::ColMajor.key(&[1, 0], &shape);
        let k01 = LinearOrder::ColMajor.key(&[0, 1], &shape);
        assert!(k00 < k10 && k10 < k01);
    }

    #[test]
    fn morton_interleaves() {
        // (1,1) -> 0b11 = 3, (0,1) -> 0b01 = 1, (1,0) -> 0b10 = 2
        assert_eq!(morton_key(&[0, 0]), 0);
        assert_eq!(morton_key(&[0, 1]), 1);
        assert_eq!(morton_key(&[1, 0]), 2);
        assert_eq!(morton_key(&[1, 1]), 3);
    }

    fn all_keys_unique(order: LinearOrder, shape: &[u64]) {
        let mut seen = HashSet::new();
        let total: u64 = shape.iter().product();
        let mut coords = vec![0u64; shape.len()];
        for _ in 0..total {
            assert!(
                seen.insert(order.key(&coords, shape)),
                "duplicate key for {coords:?} with {order:?}"
            );
            // increment odometer
            for i in (0..shape.len()).rev() {
                coords[i] += 1;
                if coords[i] < shape[i] {
                    break;
                }
                coords[i] = 0;
            }
        }
    }

    #[test]
    fn keys_are_bijective_for_all_orders() {
        for order in [
            LinearOrder::RowMajor,
            LinearOrder::ColMajor,
            LinearOrder::ZOrder,
            LinearOrder::Hilbert,
            LinearOrder::Directional { axis: 1 },
        ] {
            all_keys_unique(order, &[4, 4]);
            all_keys_unique(order, &[3, 5, 2]);
            all_keys_unique(order, &[8, 8, 8]);
        }
    }

    #[test]
    fn hilbert_neighbors_are_adjacent_in_2d() {
        // Successive Hilbert keys must differ by exactly one grid step.
        let shape = [8u64, 8];
        let mut cells: Vec<([u64; 2], u128)> = Vec::new();
        for a in 0..8u64 {
            for b in 0..8u64 {
                cells.push(([a, b], LinearOrder::Hilbert.key(&[a, b], &shape)));
            }
        }
        cells.sort_by_key(|&(_, k)| k);
        for w in cells.windows(2) {
            let ([a0, b0], _) = w[0];
            let ([a1, b1], _) = w[1];
            let dist = a0.abs_diff(a1) + b0.abs_diff(b1);
            assert_eq!(dist, 1, "Hilbert successors must be grid neighbors");
        }
    }

    #[test]
    fn directional_order_keeps_axis_contiguous() {
        let shape = [4u64, 4];
        // Directional on axis 0: all rows of a single column adjacent.
        let o = LinearOrder::Directional { axis: 0 };
        let k0 = o.key(&[0, 2], &shape);
        let k1 = o.key(&[1, 2], &shape);
        let k2 = o.key(&[2, 2], &shape);
        assert_eq!(k1 - k0, 1);
        assert_eq!(k2 - k1, 1);
    }
}
