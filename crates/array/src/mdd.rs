//! `MDArray` — a dense multidimensional array (RasDaMan's "MDD object").
//!
//! An `MDArray` pairs a [`Minterval`] domain with a typed dense buffer in
//! row-major cell order. Tiles are themselves small `MDArray`s; full objects
//! in the DBMS are materialized into `MDArray`s only when needed (query
//! results, generated test data).
//!
//! The cell buffer is copy-on-write: an array can *own* its bytes
//! (`Vec<u8>`) or *share* a refcounted slice of a larger buffer
//! ([`Bytes`]), e.g. a staged super-tile payload. Reads work identically on
//! both; the first mutation of a shared buffer detaches a private copy, so
//! sibling tiles cut from the same super-tile never observe each other's
//! writes.

use crate::domain::{Minterval, Point};
use crate::error::{ArrayError, Result};
use crate::value::{CellType, CellValue};
use bytes::Bytes;

/// The copy-on-write cell buffer.
#[derive(Debug, Clone)]
enum Buf {
    /// Privately owned bytes (mutable in place).
    Owned(Vec<u8>),
    /// Refcounted view into a shared buffer (e.g. a super-tile payload).
    Shared(Bytes),
}

impl Buf {
    fn as_slice(&self) -> &[u8] {
        match self {
            Buf::Owned(v) => v,
            Buf::Shared(b) => b,
        }
    }

    /// Mutable access; detaches a private copy first when shared.
    /// Returns the bytes that had to be copied to unshare (0 when the
    /// buffer was already owned).
    fn make_mut(&mut self) -> (&mut [u8], u64) {
        let copied = match self {
            Buf::Owned(_) => 0,
            Buf::Shared(b) => {
                let v = b.to_vec();
                let n = v.len() as u64;
                *self = Buf::Owned(v);
                n
            }
        };
        match self {
            Buf::Owned(v) => (v, copied),
            Buf::Shared(_) => unreachable!("unshared above"),
        }
    }
}

/// A dense multidimensional array with inclusive-bounds domain.
#[derive(Debug, Clone)]
pub struct MDArray {
    domain: Minterval,
    cell_type: CellType,
    /// Row-major (last axis fastest) little-endian cell buffer.
    data: Buf,
}

/// Equality is by domain, type and cell contents — ownership of the
/// buffer (owned vs. shared) is invisible.
impl PartialEq for MDArray {
    fn eq(&self, other: &MDArray) -> bool {
        self.domain == other.domain
            && self.cell_type == other.cell_type
            && self.bytes() == other.bytes()
    }
}

impl MDArray {
    /// Create a zero-filled array.
    pub fn zeros(domain: Minterval, cell_type: CellType) -> MDArray {
        let len = domain.cell_count() as usize * cell_type.size_bytes();
        MDArray {
            domain,
            cell_type,
            data: Buf::Owned(vec![0u8; len]),
        }
    }

    /// Create from an existing raw buffer (must be exactly the right size).
    pub fn from_bytes(domain: Minterval, cell_type: CellType, data: Vec<u8>) -> Result<MDArray> {
        Self::check_len(&domain, cell_type, data.len())?;
        Ok(MDArray {
            domain,
            cell_type,
            data: Buf::Owned(data),
        })
    }

    /// Create over a shared, refcounted buffer slice **without copying**.
    /// The array is read-only until the first mutation, which detaches a
    /// private copy (copy-on-write).
    pub fn from_shared(domain: Minterval, cell_type: CellType, data: Bytes) -> Result<MDArray> {
        Self::check_len(&domain, cell_type, data.len())?;
        Ok(MDArray {
            domain,
            cell_type,
            data: Buf::Shared(data),
        })
    }

    fn check_len(domain: &Minterval, cell_type: CellType, got: usize) -> Result<()> {
        let expected = domain.cell_count() as usize * cell_type.size_bytes();
        if got != expected {
            return Err(ArrayError::BufferSize { expected, got });
        }
        Ok(())
    }

    /// Create by evaluating `f` at every point of the domain.
    pub fn generate<F>(domain: Minterval, cell_type: CellType, mut f: F) -> MDArray
    where
        F: FnMut(&Point) -> f64,
    {
        let mut arr = MDArray::zeros(domain.clone(), cell_type);
        let (buf, _) = arr.data.make_mut();
        for (i, p) in domain.iter_points().enumerate() {
            CellValue::from_f64(cell_type, f(&p))
                .write(buf, i)
                .expect("buffer sized for domain");
        }
        arr
    }

    /// The array's spatial domain.
    pub fn domain(&self) -> &Minterval {
        &self.domain
    }

    /// The array's cell type.
    pub fn cell_type(&self) -> CellType {
        self.cell_type
    }

    /// Raw cell buffer.
    pub fn bytes(&self) -> &[u8] {
        self.data.as_slice()
    }

    /// Consume into the raw cell buffer (copies only if shared).
    pub fn into_bytes(self) -> Vec<u8> {
        match self.data {
            Buf::Owned(v) => v,
            Buf::Shared(b) => b.to_vec(),
        }
    }

    /// Whether the buffer is a shared (copy-on-write) view.
    pub fn is_shared(&self) -> bool {
        matches!(self.data, Buf::Shared(_))
    }

    /// Convert an owned buffer into a shared one in O(1) (no copy), so
    /// subsequent `clone`s are refcount bumps instead of deep copies.
    /// No-op when already shared.
    pub fn freeze_payload(&mut self) {
        if let Buf::Owned(v) = &mut self.data {
            let v = std::mem::take(v);
            self.data = Buf::Shared(Bytes::from(v));
        }
    }

    /// The shared handle when the buffer is shared (refcount bump, no copy).
    pub fn shared_bytes(&self) -> Option<Bytes> {
        match &self.data {
            Buf::Shared(b) => Some(b.clone()),
            Buf::Owned(_) => None,
        }
    }

    /// Size of the cell buffer in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.data.as_slice().len() as u64
    }

    /// Read the cell at `p`.
    pub fn get(&self, p: &Point) -> Result<CellValue> {
        let off = self.domain.offset_of(p)?;
        CellValue::read(self.cell_type, self.bytes(), off)
    }

    /// Read the cell at `p` as f64.
    pub fn get_f64(&self, p: &Point) -> Result<f64> {
        Ok(self.get(p)?.as_f64())
    }

    /// Write the cell at `p` (value is converted to the array's type).
    /// Detaches a private copy first when the buffer is shared.
    pub fn set(&mut self, p: &Point, v: f64) -> Result<()> {
        let off = self.domain.offset_of(p)?;
        let (buf, _) = self.data.make_mut();
        CellValue::from_f64(self.cell_type, v).write(buf, off)
    }

    /// Extract the sub-array covering `sub` (must be contained in the domain).
    pub fn extract(&self, sub: &Minterval) -> Result<MDArray> {
        if !self.domain.contains(sub) {
            return Err(ArrayError::NotContained {
                inner: sub.to_string(),
                outer: self.domain.to_string(),
            });
        }
        let mut out = MDArray::zeros(sub.clone(), self.cell_type);
        copy_region(self, &mut out, sub)?;
        Ok(out)
    }

    /// Copy the overlap of `src` into `self` (both interpreted in the same
    /// global coordinate space). Non-overlapping parts are untouched.
    pub fn patch(&mut self, src: &MDArray) -> Result<()> {
        if src.cell_type != self.cell_type {
            return Err(ArrayError::TypeMismatch {
                left: self.cell_type.name(),
                right: src.cell_type.name(),
            });
        }
        let overlap = match self.domain.intersection(src.domain()) {
            Some(o) => o,
            None => return Ok(()),
        };
        copy_region(src, self, &overlap)
    }

    /// Iterate over `(point, value)` pairs in row-major order.
    pub fn iter_cells(&self) -> impl Iterator<Item = (Point, CellValue)> + '_ {
        self.domain.iter_points().enumerate().map(move |(i, p)| {
            let v =
                CellValue::read(self.cell_type, self.bytes(), i).expect("buffer sized for domain");
            (p, v)
        })
    }

    /// Sum of all cells as f64 (convenience used by tests and condensers).
    /// Delegates to the typed bulk kernel in [`crate::ops`].
    pub fn sum(&self) -> f64 {
        crate::ops::sum_cells(self.cell_type, self.bytes())
    }
}

/// Copy the cells of region `region` from `src` into `dst`; `region` must be
/// contained in both domains. Copies are performed run-wise along the last
/// axis for efficiency.
pub fn copy_region(src: &MDArray, dst: &mut MDArray, region: &Minterval) -> Result<()> {
    if !src.domain().contains(region) {
        return Err(ArrayError::NotContained {
            inner: region.to_string(),
            outer: src.domain().to_string(),
        });
    }
    if !dst.domain().contains(region) {
        return Err(ArrayError::NotContained {
            inner: region.to_string(),
            outer: dst.domain().to_string(),
        });
    }
    if src.cell_type() != dst.cell_type() {
        return Err(ArrayError::TypeMismatch {
            left: src.cell_type().name(),
            right: dst.cell_type().name(),
        });
    }
    let d = region.dim();
    let cell_sz = src.cell_type().size_bytes();
    if d == 0 {
        return Ok(());
    }
    // Iterate over all "rows": fix all axes but the last, copy a contiguous run.
    let last = d - 1;
    let run_len = region.axis(last).extent() as usize * cell_sz;
    let outer = if d == 1 {
        None
    } else {
        Some(Minterval::from_intervals(region.axes()[..last].to_vec()))
    };
    let row_starts: Box<dyn Iterator<Item = Point>> = match &outer {
        None => Box::new(std::iter::once(Point::new(vec![region.axis(0).lo]))),
        Some(o) => Box::new(o.iter_points().map(move |mut p| {
            p.0.push(region.axis(last).lo);
            p
        })),
    };
    let src_dom = src.domain().clone();
    let dst_dom = dst.domain().clone();
    let src_bytes = src.bytes();
    let (dst_bytes, _) = dst.data.make_mut();
    for start in row_starts {
        let so = src_dom.offset_of(&start)? * cell_sz;
        let doff = dst_dom.offset_of(&start)? * cell_sz;
        dst_bytes[doff..doff + run_len].copy_from_slice(&src_bytes[so..so + run_len]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    #[test]
    fn zeros_has_right_size() {
        let a = MDArray::zeros(mi(&[(0, 9), (0, 9)]), CellType::F32);
        assert_eq!(a.size_bytes(), 100 * 4);
        assert_eq!(a.get_f64(&Point::new(vec![5, 5])).unwrap(), 0.0);
    }

    #[test]
    fn generate_and_get() {
        let a = MDArray::generate(mi(&[(0, 3), (0, 3)]), CellType::I32, |p| {
            (p.coord(0) * 10 + p.coord(1)) as f64
        });
        assert_eq!(a.get_f64(&Point::new(vec![2, 3])).unwrap(), 23.0);
        assert_eq!(a.get_f64(&Point::new(vec![0, 0])).unwrap(), 0.0);
    }

    #[test]
    fn extract_subarray() {
        let a = MDArray::generate(mi(&[(0, 9), (0, 9)]), CellType::F64, |p| {
            (p.coord(0) * 100 + p.coord(1)) as f64
        });
        let sub = a.extract(&mi(&[(2, 4), (5, 7)])).unwrap();
        assert_eq!(sub.domain(), &mi(&[(2, 4), (5, 7)]));
        for p in sub.domain().iter_points() {
            assert_eq!(
                sub.get_f64(&p).unwrap(),
                (p.coord(0) * 100 + p.coord(1)) as f64
            );
        }
    }

    #[test]
    fn extract_rejects_uncontained() {
        let a = MDArray::zeros(mi(&[(0, 4), (0, 4)]), CellType::U8);
        assert!(a.extract(&mi(&[(3, 6), (0, 4)])).is_err());
    }

    #[test]
    fn patch_merges_overlap() {
        let mut dst = MDArray::zeros(mi(&[(0, 9), (0, 9)]), CellType::I32);
        let src = MDArray::generate(mi(&[(5, 12), (5, 12)]), CellType::I32, |_| 7.0);
        dst.patch(&src).unwrap();
        assert_eq!(dst.get_f64(&Point::new(vec![6, 6])).unwrap(), 7.0);
        assert_eq!(dst.get_f64(&Point::new(vec![4, 4])).unwrap(), 0.0);
        // disjoint patch is a no-op
        let far = MDArray::generate(mi(&[(50, 52), (50, 52)]), CellType::I32, |_| 9.0);
        dst.patch(&far).unwrap();
        assert_eq!(dst.sum(), 7.0 * 25.0);
    }

    #[test]
    fn patch_rejects_type_mismatch() {
        let mut dst = MDArray::zeros(mi(&[(0, 4)]), CellType::I32);
        let src = MDArray::zeros(mi(&[(0, 4)]), CellType::F32);
        assert!(dst.patch(&src).is_err());
    }

    #[test]
    fn one_dimensional_copy() {
        let src = MDArray::generate(mi(&[(0, 9)]), CellType::U8, |p| p.coord(0) as f64);
        let sub = src.extract(&mi(&[(3, 6)])).unwrap();
        assert_eq!(sub.sum(), (3 + 4 + 5 + 6) as f64);
    }

    #[test]
    fn reassemble_from_extracted_pieces() {
        // Extract two halves and patch them back into an empty array.
        let orig = MDArray::generate(mi(&[(0, 7), (0, 7)]), CellType::F32, |p| {
            (p.coord(0) * 8 + p.coord(1)) as f64
        });
        let left = orig.extract(&mi(&[(0, 7), (0, 3)])).unwrap();
        let right = orig.extract(&mi(&[(0, 7), (4, 7)])).unwrap();
        let mut rebuilt = MDArray::zeros(mi(&[(0, 7), (0, 7)]), CellType::F32);
        rebuilt.patch(&left).unwrap();
        rebuilt.patch(&right).unwrap();
        assert_eq!(rebuilt, orig);
    }

    #[test]
    fn shared_buffer_reads_like_owned() {
        let owned = MDArray::generate(mi(&[(0, 3), (0, 3)]), CellType::I32, |p| {
            (p.coord(0) * 10 + p.coord(1)) as f64
        });
        let shared = MDArray::from_shared(
            owned.domain().clone(),
            owned.cell_type(),
            Bytes::from(owned.bytes().to_vec()),
        )
        .unwrap();
        assert!(shared.is_shared());
        assert_eq!(shared, owned);
        assert_eq!(shared.sum(), owned.sum());
    }

    #[test]
    fn cow_mutation_detaches_from_siblings() {
        let backing = Bytes::from(vec![7u8; 32]);
        let dom = mi(&[(0, 15)]);
        let mut a = MDArray::from_shared(dom.clone(), CellType::U8, backing.slice(0..16)).unwrap();
        let b = MDArray::from_shared(dom, CellType::U8, backing.slice(0..16)).unwrap();
        a.set(&Point::new(vec![3]), 99.0).unwrap();
        assert!(!a.is_shared(), "mutation must detach a private copy");
        assert_eq!(a.get_f64(&Point::new(vec![3])).unwrap(), 99.0);
        assert_eq!(b.get_f64(&Point::new(vec![3])).unwrap(), 7.0);
        assert_eq!(backing[3], 7, "backing buffer untouched");
    }

    #[test]
    fn freeze_payload_makes_clone_cheap() {
        let mut a = MDArray::generate(mi(&[(0, 63)]), CellType::F64, |p| p.coord(0) as f64);
        assert!(!a.is_shared());
        a.freeze_payload();
        assert!(a.is_shared());
        let b = a.clone();
        let ha = a.shared_bytes().unwrap();
        let hb = b.shared_bytes().unwrap();
        assert_eq!(ha.as_slice().as_ptr(), hb.as_slice().as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn from_shared_rejects_wrong_size() {
        let res = MDArray::from_shared(mi(&[(0, 9)]), CellType::F64, Bytes::from(vec![0u8; 3]));
        assert!(res.is_err());
    }
}
