//! Tiling: partitioning an array domain into tiles.
//!
//! RasDaMan's physical model (paper §2.6.3) stores each MDD object as a set
//! of *tiles*, each a contiguous BLOB. HEAVEN's super-tile machinery operates
//! on these tiles. We implement the tiling strategies relevant to the paper:
//!
//! * **Regular (aligned)** tiling — the grid of equally-shaped tiles used by
//!   all experiments;
//! * **Directional** tiling — elongated tiles along a preferred access axis;
//! * **Size-bounded** tiling — regular tiling whose tile shape is derived
//!   from a target tile size in bytes (RasDaMan's classic 64 KB–8 MB tiles).

use crate::domain::{Interval, Minterval};
use crate::error::{ArrayError, Result};
use crate::value::CellType;

/// A tiling strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tiling {
    /// Equally shaped tiles of the given shape (border tiles may be smaller).
    Regular {
        /// Per-axis tile edge lengths.
        tile_shape: Vec<u64>,
    },
    /// Tiles stretched along `axis` by `factor` relative to a cubic base
    /// edge, squeezed on the other axes to keep tile size roughly constant.
    Directional {
        /// The elongated axis.
        axis: usize,
        /// Edge length on the non-preferred axes.
        base_edge: u64,
        /// Stretch factor of the preferred axis.
        factor: u64,
    },
    /// Regular tiling with near-cubic tiles not exceeding `max_bytes`.
    SizeBounded {
        /// Upper bound on the tile payload in bytes.
        max_bytes: u64,
    },
}

impl Tiling {
    /// Compute the tile shape this strategy uses for the given domain and
    /// cell type.
    pub fn tile_shape(&self, domain: &Minterval, cell_type: CellType) -> Result<Vec<u64>> {
        let d = domain.dim();
        if d == 0 {
            return Err(ArrayError::Empty("domain"));
        }
        match self {
            Tiling::Regular { tile_shape } => {
                if tile_shape.len() != d {
                    return Err(ArrayError::DimensionMismatch {
                        expected: d,
                        got: tile_shape.len(),
                    });
                }
                if tile_shape.contains(&0) {
                    return Err(ArrayError::Empty("tile edge"));
                }
                Ok(tile_shape.clone())
            }
            Tiling::Directional {
                axis,
                base_edge,
                factor,
            } => {
                if *axis >= d {
                    return Err(ArrayError::BadSlice { dim: *axis, pos: 0 });
                }
                if *base_edge == 0 || *factor == 0 {
                    return Err(ArrayError::Empty("tile edge"));
                }
                let mut shape = vec![*base_edge; d];
                shape[*axis] = base_edge * factor;
                Ok(shape)
            }
            Tiling::SizeBounded { max_bytes } => {
                let cell = cell_type.size_bytes() as u64;
                if *max_bytes < cell {
                    return Err(ArrayError::Empty("tile size budget"));
                }
                let max_cells = (*max_bytes / cell).max(1);
                // Near-cubic edge: floor(max_cells^(1/d)).
                let mut edge = (max_cells as f64).powf(1.0 / d as f64).floor() as u64;
                edge = edge.max(1);
                // floating point may overshoot; shrink until within budget
                while edge > 1 && edge.pow(d as u32) > max_cells {
                    edge -= 1;
                }
                Ok(vec![edge; d])
            }
        }
    }

    /// Partition the domain into tile domains, in row-major grid order.
    ///
    /// Tiles are aligned to the domain's lower corner; tiles on the upper
    /// border are clipped to the domain.
    pub fn tile_domains(&self, domain: &Minterval, cell_type: CellType) -> Result<Vec<Minterval>> {
        let shape = self.tile_shape(domain, cell_type)?;
        let d = domain.dim();
        // Number of tiles along each axis.
        let counts: Vec<u64> = (0..d)
            .map(|i| domain.axis(i).extent().div_ceil(shape[i]))
            .collect();
        let grid = Minterval::with_shape(&counts)?;
        let mut tiles = Vec::with_capacity(grid.cell_count() as usize);
        for gp in grid.iter_points() {
            let mut axes = Vec::with_capacity(d);
            for (i, &edge) in shape.iter().enumerate() {
                let lo = domain.axis(i).lo + gp.coord(i) * edge as i64;
                let hi = (lo + edge as i64 - 1).min(domain.axis(i).hi);
                axes.push(Interval::new(lo, hi)?);
            }
            tiles.push(Minterval::from_intervals(axes));
        }
        Ok(tiles)
    }

    /// The grid coordinates of each tile produced by
    /// [`tile_domains`](Self::tile_domains), in the same order, together with
    /// the grid dimensions. Used by linearization orders.
    pub fn tile_grid(
        &self,
        domain: &Minterval,
        cell_type: CellType,
    ) -> Result<(Vec<Vec<u64>>, Vec<u64>)> {
        let shape = self.tile_shape(domain, cell_type)?;
        let d = domain.dim();
        let counts: Vec<u64> = (0..d)
            .map(|i| domain.axis(i).extent().div_ceil(shape[i]))
            .collect();
        let grid = Minterval::with_shape(&counts)?;
        let coords = grid
            .iter_points()
            .map(|p| p.0.iter().map(|&c| c as u64).collect())
            .collect();
        Ok((coords, counts))
    }

    /// Grid coordinate of the tile containing global point coordinates,
    /// given the tile shape returned by [`tile_shape`](Self::tile_shape).
    pub fn grid_coord_of(domain: &Minterval, tile_shape: &[u64], tile: &Minterval) -> Vec<u64> {
        (0..domain.dim())
            .map(|i| ((tile.axis(i).lo - domain.axis(i).lo) as u64) / tile_shape[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    #[test]
    fn regular_tiling_covers_domain_disjointly() {
        let dom = mi(&[(0, 99), (0, 99)]);
        let t = Tiling::Regular {
            tile_shape: vec![30, 40],
        };
        let tiles = t.tile_domains(&dom, CellType::U8).unwrap();
        assert_eq!(tiles.len(), 4 * 3);
        // disjoint
        for i in 0..tiles.len() {
            for j in (i + 1)..tiles.len() {
                assert!(!tiles[i].intersects(&tiles[j]));
            }
        }
        // covering
        let total: u64 = tiles.iter().map(|t| t.cell_count()).sum();
        assert_eq!(total, dom.cell_count());
    }

    #[test]
    fn border_tiles_are_clipped() {
        let dom = mi(&[(0, 9)]);
        let t = Tiling::Regular {
            tile_shape: vec![4],
        };
        let tiles = t.tile_domains(&dom, CellType::U8).unwrap();
        assert_eq!(tiles.len(), 3);
        assert_eq!(tiles[2], mi(&[(8, 9)]));
    }

    #[test]
    fn tiling_respects_non_zero_origin() {
        let dom = mi(&[(10, 29), (-5, 14)]);
        let t = Tiling::Regular {
            tile_shape: vec![10, 10],
        };
        let tiles = t.tile_domains(&dom, CellType::U8).unwrap();
        assert_eq!(tiles.len(), 4);
        assert_eq!(tiles[0], mi(&[(10, 19), (-5, 4)]));
        assert_eq!(tiles[3], mi(&[(20, 29), (5, 14)]));
    }

    #[test]
    fn size_bounded_tiles_fit_budget() {
        let dom = mi(&[(0, 999), (0, 999), (0, 999)]);
        let t = Tiling::SizeBounded {
            max_bytes: 8 << 20, // 8 MB
        };
        let shape = t.tile_shape(&dom, CellType::F32).unwrap();
        let cells: u64 = shape.iter().product();
        assert!(cells * 4 <= 8 << 20);
        // Reasonably close to the budget (at least 1/8 of it for cubic shapes).
        assert!(cells * 4 >= (8 << 20) / 8);
    }

    #[test]
    fn directional_tiles_are_elongated() {
        let dom = mi(&[(0, 99), (0, 99), (0, 99)]);
        let t = Tiling::Directional {
            axis: 2,
            base_edge: 10,
            factor: 5,
        };
        let shape = t.tile_shape(&dom, CellType::F32).unwrap();
        assert_eq!(shape, vec![10, 10, 50]);
    }

    #[test]
    fn rejects_bad_parameters() {
        let dom = mi(&[(0, 9), (0, 9)]);
        assert!(Tiling::Regular {
            tile_shape: vec![0, 5]
        }
        .tile_domains(&dom, CellType::U8)
        .is_err());
        assert!(Tiling::Regular {
            tile_shape: vec![5]
        }
        .tile_domains(&dom, CellType::U8)
        .is_err());
        assert!(Tiling::Directional {
            axis: 5,
            base_edge: 4,
            factor: 2
        }
        .tile_shape(&dom, CellType::U8)
        .is_err());
    }

    #[test]
    fn grid_coords_match_tile_order() {
        let dom = mi(&[(0, 19), (0, 29)]);
        let t = Tiling::Regular {
            tile_shape: vec![10, 10],
        };
        let tiles = t.tile_domains(&dom, CellType::U8).unwrap();
        let (coords, counts) = t.tile_grid(&dom, CellType::U8).unwrap();
        assert_eq!(counts, vec![2, 3]);
        assert_eq!(coords.len(), tiles.len());
        let shape = t.tile_shape(&dom, CellType::U8).unwrap();
        for (tile, gc) in tiles.iter().zip(&coords) {
            assert_eq!(&Tiling::grid_coord_of(&dom, &shape, tile), gc);
        }
    }
}
