//! Byte-level compression for tile payloads.
//!
//! RasDaMan supports tile compression, and period tape drives compress in
//! hardware; either way fewer bytes cross the tertiary channel. We provide
//! a simple, dependency-free run-length codec that performs well on the
//! data classes the paper's applications produce (classified rasters,
//! masked regions, zero-padded borders) and degrades to a bounded ~0.4 %
//! overhead on incompressible data.
//!
//! Format: a stream of chunks, each `[tag: u8]` followed by
//! * `tag < 128`: a literal run of `tag + 1` bytes (copied verbatim);
//! * `tag >= 128`: a repeat run — the next byte appears `tag - 128 + 2`
//!   times (runs of 2–129).

/// Compress a byte buffer. The output always decompresses back to the
/// input with [`rle_decompress`].
pub fn rle_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let n = input.len();
    let mut i = 0;
    let mut lit_start = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut s = from;
        while s < to {
            let take = (to - s).min(128);
            out.push((take - 1) as u8);
            out.extend_from_slice(&input[s..s + take]);
            s += take;
        }
    };

    while i < n {
        // length of the run starting at i
        let b = input[i];
        let mut run = 1;
        while i + run < n && input[i + run] == b && run < 129 {
            run += 1;
        }
        if run >= 3 {
            flush_literals(&mut out, lit_start, i, input);
            out.push((run - 2) as u8 | 0x80);
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, lit_start, n, input);
    out
}

/// Decompress a buffer produced by [`rle_compress`]. Returns `None` on a
/// malformed stream.
pub fn rle_decompress(input: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut i = 0;
    while i < input.len() {
        let tag = input[i];
        i += 1;
        if tag < 128 {
            let len = tag as usize + 1;
            if i + len > input.len() {
                return None;
            }
            out.extend_from_slice(&input[i..i + len]);
            i += len;
        } else {
            let count = (tag - 128) as usize + 2;
            let b = *input.get(i)?;
            i += 1;
            out.extend(std::iter::repeat_n(b, count));
        }
    }
    Some(out)
}

/// Compression ratio `compressed / original` (1.0 for empty input).
pub fn rle_ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    rle_compress(input).len() as f64 / input.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = rle_compress(data);
        assert_eq!(rle_decompress(&c).as_deref(), Some(data));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(&[]);
        roundtrip(&[7]);
        roundtrip(&[7, 7]);
        roundtrip(&[7, 7, 7]);
        roundtrip(&[1, 2, 3]);
    }

    #[test]
    fn long_runs_compress_well() {
        let data = vec![0u8; 10_000];
        let c = rle_compress(&data);
        assert!(c.len() < 200, "10k zeros -> {} bytes", c.len());
        roundtrip(&data);
    }

    #[test]
    fn mixed_content_roundtrips() {
        let mut data = Vec::new();
        for i in 0..5000u32 {
            if i % 7 == 0 {
                data.extend_from_slice(&[0; 13]);
            }
            data.push((i % 251) as u8);
        }
        roundtrip(&data);
        assert!(rle_ratio(&data) < 1.0);
    }

    #[test]
    fn incompressible_overhead_is_bounded() {
        // strictly alternating bytes: no runs at all
        let data: Vec<u8> = (0..10_000).map(|i| (i % 2) as u8 * 255).collect();
        let c = rle_compress(&data);
        // 1 tag byte per 128 literals ≈ 0.8 % overhead
        assert!(c.len() <= data.len() + data.len() / 100 + 16);
        roundtrip(&data);
    }

    #[test]
    fn run_lengths_at_format_boundaries() {
        for len in [2usize, 3, 128, 129, 130, 257, 259] {
            let mut data = vec![9u8; len];
            data.push(1);
            data.push(2);
            roundtrip(&data);
        }
        // literal run boundaries
        for len in [127usize, 128, 129, 256] {
            let data: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn malformed_streams_rejected() {
        assert_eq!(rle_decompress(&[5]), None); // literal run truncated
        assert_eq!(rle_decompress(&[0x80]), None); // repeat missing byte
        assert!(rle_decompress(&[0x80, 7]).is_some());
    }
}
