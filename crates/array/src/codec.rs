//! Byte-level compression for tile and super-tile payloads.
//!
//! RasDaMan supports tile compression, and period tape drives compress in
//! hardware; either way fewer bytes cross the tertiary channel. This
//! module provides:
//!
//! * a dependency-free run-length codec ([`rle_compress`] /
//!   [`rle_decompress`]) with word-at-a-time run detection on the encode
//!   side and merged `memset`-style run fills on the decode side — the
//!   wire format is unchanged from the original scalar implementation
//!   (kept verbatim in [`baseline`] as the differential reference);
//! * a Blosc-style byte [`shuffle`] that transposes multi-byte cells into
//!   per-byte planes so slowly-varying high bytes become long runs;
//! * a self-describing super-tile frame ([`encode_wire`] /
//!   [`decode_wire`]) that tags each payload `Raw` / `Rle` / `ShuffleRle`
//!   and picks the codec adaptively from a cheap ratio probe on a sample,
//!   so incompressible payloads stay a zero-copy raw pass-through.
//!
//! # RLE wire format (unchanged since the first release)
//!
//! A stream of chunks, each `[tag: u8]` followed by
//! * `tag < 128`: a literal run of `tag + 1` bytes (copied verbatim);
//! * `tag >= 128`: a repeat run — the next byte appears `tag - 128 + 2`
//!   times (runs of 2–129).
//!
//! # Frame format (version 1)
//!
//! ```text
//! [0..2)   magic  b"HV"
//! [2]      version  (1)
//! [3]      codec tag: 0 = Raw, 1 = Rle, 2 = ShuffleRle
//! [4]      cell size in bytes (>= 1; the shuffle stride)
//! [5..8)   reserved, must be zero
//! [8..16)  orig_len  u64 LE — decoded payload length
//! [16..24) comp_len  u64 LE — body length; must equal the bytes that
//!          actually follow the header, which is what makes a frame
//!          sniffable: random or legacy payloads that happen to start
//!          with the magic still fail the length equation.
//! ```
//!
//! Adaptively-selected `Raw` payloads are **untagged**: the wire bytes
//! are the payload itself (a refcount bump, no copy, no header). The
//! decoder disambiguates untagged raw from legacy (pre-frame) RLE
//! streams by the caller-supplied expected decoded length: a raw wire
//! payload is exactly `orig_len` bytes long, an RLE stream practically
//! never is. (The pathological exception — a legacy RLE stream whose
//! compressed length equals its decoded length byte-for-byte — decodes
//! as raw and is then rejected by the super-tile directory parse, i.e.
//! loudly, never silently.) A raw payload whose first bytes would sniff
//! as a valid frame is wrapped in an explicit `Raw` frame at encode time
//! (a rare one-time copy); framed raw decode is still a zero-copy slice
//! past the header.

use bytes::{Bytes, BytesMut};

/// The original byte-at-a-time codec, kept verbatim as the scalar
/// reference: differential tests assert the fast paths accept its output
/// (and vice versa), and `benches/codec.rs` reports speedups against it.
pub mod baseline {
    /// Compress a byte buffer (scalar reference implementation).
    pub fn rle_compress(input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        let n = input.len();
        let mut i = 0;
        let mut lit_start = 0usize;

        let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
            let mut s = from;
            while s < to {
                let take = (to - s).min(128);
                out.push((take - 1) as u8);
                out.extend_from_slice(&input[s..s + take]);
                s += take;
            }
        };

        while i < n {
            // length of the run starting at i
            let b = input[i];
            let mut run = 1;
            while i + run < n && input[i + run] == b && run < 129 {
                run += 1;
            }
            if run >= 3 {
                flush_literals(&mut out, lit_start, i, input);
                out.push((run - 2) as u8 | 0x80);
                out.push(b);
                i += run;
                lit_start = i;
            } else {
                i += run;
            }
        }
        flush_literals(&mut out, lit_start, n, input);
        out
    }

    /// Decompress a buffer produced by [`rle_compress`] (scalar reference
    /// implementation). Returns `None` on a malformed stream.
    pub fn rle_decompress(input: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(input.len() * 2);
        let mut i = 0;
        while i < input.len() {
            let tag = input[i];
            i += 1;
            if tag < 128 {
                let len = tag as usize + 1;
                if i + len > input.len() {
                    return None;
                }
                out.extend_from_slice(&input[i..i + len]);
                i += len;
            } else {
                let count = (tag - 128) as usize + 2;
                let b = *input.get(i)?;
                i += 1;
                out.extend(std::iter::repeat_n(b, count));
            }
        }
        Some(out)
    }
}

// --- word-at-a-time RLE ----------------------------------------------------

const ONES: u64 = 0x0101_0101_0101_0101;
/// High bit of each of the low seven bytes: the valid pair-detector lanes
/// of `w ^ (w >> 8)` (byte 7 compares against a shifted-in zero).
const PAIR_LANES: u64 = 0x0080_8080_8080_8080;

/// Length of the run of equal bytes starting at `start`, found eight
/// bytes at a time: XOR against the broadcast byte, `trailing_zeros / 8`
/// counts the matching prefix (little-endian load keeps memory order).
#[inline]
fn run_len(input: &[u8], start: usize) -> usize {
    let n = input.len();
    let b = input[start];
    let pat = ONES.wrapping_mul(b as u64);
    let mut j = start + 1;
    while j + 8 <= n {
        let w = u64::from_le_bytes(input[j..j + 8].try_into().unwrap());
        let x = w ^ pat;
        if x != 0 {
            return j - start + (x.trailing_zeros() / 8) as usize;
        }
        j += 8;
    }
    while j < n && input[j] == b {
        j += 1;
    }
    j - start
}

/// Smallest index `>= i` where a run of at least three equal bytes
/// starts, or `input.len()` if there is none. Literal regions are skipped
/// seven bytes per iteration: a zero byte in `w ^ (w >> 8)` (classic
/// zero-byte detector) marks an adjacent equal pair; the detector's
/// lowest set lane is always exact, so the first candidate pair is found
/// without false positives.
#[inline]
fn next_run_start(input: &[u8], mut i: usize) -> usize {
    let n = input.len();
    while i + 8 <= n {
        let w = u64::from_le_bytes(input[i..i + 8].try_into().unwrap());
        let x = w ^ (w >> 8);
        let m = x.wrapping_sub(ONES) & !x & PAIR_LANES;
        if m == 0 {
            i += 7;
            continue;
        }
        let p = i + (m.trailing_zeros() / 8) as usize;
        if p + 2 < n && input[p + 2] == input[p] {
            return p;
        }
        // Pair but no triple: the next possible run start is past the pair.
        i = p + 2;
    }
    while i + 2 < n {
        if input[i] == input[i + 1] && input[i] == input[i + 2] {
            return i;
        }
        i += 1;
    }
    n
}

#[inline]
fn flush_literals(out: &mut BytesMut, lits: &[u8]) {
    let mut s = 0;
    while s < lits.len() {
        let take = (lits.len() - s).min(128);
        out.put_u8((take - 1) as u8);
        out.extend_from_slice(&lits[s..s + take]);
        s += take;
    }
}

/// Compress `input` appending to `out`. Produces byte-identical output to
/// [`baseline::rle_compress`] (same chunking rules), but detects and
/// extends runs a word at a time.
pub fn rle_compress_into(input: &[u8], out: &mut BytesMut) {
    let n = input.len();
    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i < n {
        let j = next_run_start(input, i);
        if j >= n {
            break;
        }
        let total = run_len(input, j);
        flush_literals(out, &input[lit_start..j]);
        // Chunk the run exactly as the scalar encoder does: full 129-byte
        // repeat chunks, then the remainder if it still makes a run of 3+;
        // a 1–2 byte tail flows into the following literal region.
        let b = input[j];
        let mut rem = total;
        while rem >= 129 {
            out.put_u8((129 - 2) as u8 | 0x80);
            out.put_u8(b);
            rem -= 129;
        }
        if rem >= 3 {
            out.put_u8((rem - 2) as u8 | 0x80);
            out.put_u8(b);
            rem = 0;
        }
        i = j + total - rem;
        lit_start = i;
    }
    flush_literals(out, &input[lit_start..n]);
}

/// Compress a byte buffer. The output always decompresses back to the
/// input with [`rle_decompress`].
pub fn rle_compress(input: &[u8]) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(input.len() / 2 + 16);
    rle_compress_into(input, &mut out);
    out.into()
}

/// Guaranteed writable headroom past every chunk the decoder emits, so
/// short runs can be splatted with whole-word stores instead of a
/// `memset` call whose fixed cost dwarfs a four-byte fill.
const DECODE_SLACK: usize = 16;

/// Make sure `out` has at least `need + DECODE_SLACK` spare bytes past
/// `written` uncommitted ones, committing and reallocating if not, and
/// return the cursor to the first unwritten byte.
#[inline]
fn decode_cursor(out: &mut BytesMut, written: &mut usize, need: usize) -> *mut u8 {
    if out.capacity() - out.len() - *written < need + DECODE_SLACK {
        // Commit before reallocating so initialized bytes survive the move.
        // SAFETY: the decoder initialized `written` bytes past `len`.
        unsafe { out.set_len(out.len() + *written) };
        *written = 0;
        out.reserve((need + DECODE_SLACK).max(4096));
    }
    // SAFETY: in bounds — `len + written` never exceeds capacity.
    unsafe { (out.spare_capacity_mut().as_mut_ptr() as *mut u8).add(*written) }
}

/// Decompress appending to `out`; returns the number of bytes written, or
/// `None` on a malformed stream (trailing partial output is discarded).
/// Literal chunks are single `memcpy`s; runs write through a raw cursor
/// into reserved spare capacity — short runs as two overlapping splatted
/// word stores, long ones (with consecutive same-byte repeat chunks
/// merged) as one `memset` — so the per-chunk cost is a handful of
/// instructions with no `Vec` bookkeeping. Reserve the decoded size up
/// front and this path never reallocates.
pub fn rle_decompress_into(input: &[u8], out: &mut BytesMut) -> Option<usize> {
    let n = input.len();
    let start_len = out.len();
    let mut i = 0;
    // Bytes initialized past `out.len()` but not yet committed; committed
    // in bulk whenever the buffer must grow and once at the end.
    let mut written = 0usize;
    while i < n {
        let tag = input[i];
        i += 1;
        if tag < 128 {
            let len = tag as usize + 1;
            if i + len > n {
                return None;
            }
            let dst = decode_cursor(out, &mut written, len);
            // SAFETY: `dst` has `len` reserved bytes; ranges can't overlap.
            unsafe { std::ptr::copy_nonoverlapping(input.as_ptr().add(i), dst, len) };
            written += len;
            i += len;
        } else {
            if i >= n {
                return None;
            }
            let b = input[i];
            i += 1;
            let mut count = (tag as usize - 128) + 2;
            while i + 1 < n && input[i] >= 128 && input[i + 1] == b {
                count += (input[i] as usize - 128) + 2;
                i += 2;
            }
            let dst = decode_cursor(out, &mut written, count);
            if count <= DECODE_SLACK {
                // SAFETY: `DECODE_SLACK` writable bytes are guaranteed at
                // `dst`; the tail past `count` stays uncommitted spare.
                let splat = u64::from_ne_bytes([b; 8]);
                unsafe {
                    (dst as *mut u64).write_unaligned(splat);
                    (dst.add(8) as *mut u64).write_unaligned(splat);
                }
            } else {
                // SAFETY: `count` reserved bytes at `dst`.
                unsafe { std::ptr::write_bytes(dst, b, count) };
            }
            written += count;
        }
    }
    // SAFETY: all `written` bytes past `len` were initialized above.
    unsafe { out.set_len(out.len() + written) };
    Some(out.len() - start_len)
}

/// Decompress a buffer produced by [`rle_compress`]. Returns `None` on a
/// malformed stream.
pub fn rle_decompress(input: &[u8]) -> Option<Vec<u8>> {
    let mut out = BytesMut::with_capacity(input.len().saturating_mul(2));
    rle_decompress_into(input, &mut out)?;
    Some(out.into())
}

/// Compression ratio `compressed / original` (1.0 for empty input).
pub fn rle_ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    rle_compress(input).len() as f64 / input.len() as f64
}

// --- byte shuffle ----------------------------------------------------------

/// Blosc-style byte transpose: gathers byte `k` of every `cell`-byte cell
/// into plane `k`, so slowly-varying exponent/high bytes become long
/// runs for the RLE stage. The tail (`len % cell` bytes) is copied
/// verbatim. `cell <= 1` is the identity.
pub fn shuffle(input: &[u8], cell: usize) -> Vec<u8> {
    if cell <= 1 || input.len() < cell {
        return input.to_vec();
    }
    let n = input.len();
    let cells = n / cell;
    let body = cells * cell;
    let mut out = vec![0u8; n];
    for k in 0..cell {
        let plane = &mut out[k * cells..(k + 1) * cells];
        let mut src = k;
        for d in plane.iter_mut() {
            *d = input[src];
            src += cell;
        }
    }
    out[body..].copy_from_slice(&input[body..]);
    out
}

/// Inverse of [`shuffle`].
pub fn unshuffle(input: &[u8], cell: usize) -> Vec<u8> {
    if cell <= 1 || input.len() < cell {
        return input.to_vec();
    }
    let n = input.len();
    let cells = n / cell;
    let body = cells * cell;
    let mut out = vec![0u8; n];
    for k in 0..cell {
        let plane = &input[k * cells..(k + 1) * cells];
        let mut dst = k;
        for &s in plane.iter() {
            out[dst] = s;
            dst += cell;
        }
    }
    out[body..].copy_from_slice(&input[body..]);
    out
}

// --- framed super-tile codec -----------------------------------------------

/// Frame magic: `b"HV"`.
pub const FRAME_MAGIC: [u8; 2] = *b"HV";
/// Current frame version.
pub const FRAME_VERSION: u8 = 1;
/// Fixed frame header length in bytes.
pub const FRAME_HEADER_LEN: usize = 24;

/// Wire codec selected for one super-tile payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Pass-through: the payload bytes themselves (usually untagged).
    Raw,
    /// Run-length encoded.
    Rle,
    /// Byte-shuffled by cell size, then run-length encoded.
    ShuffleRle,
}

impl Codec {
    /// Stable one-byte wire tag.
    pub fn tag(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::Rle => 1,
            Codec::ShuffleRle => 2,
        }
    }

    /// Inverse of [`Codec::tag`].
    pub fn from_tag(tag: u8) -> Option<Codec> {
        match tag {
            0 => Some(Codec::Raw),
            1 => Some(Codec::Rle),
            2 => Some(Codec::ShuffleRle),
            _ => None,
        }
    }

    /// Short static name for metrics and trace fields.
    pub fn name(self) -> &'static str {
        match self {
            Codec::Raw => "raw",
            Codec::Rle => "rle",
            Codec::ShuffleRle => "shuffle_rle",
        }
    }
}

/// Parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Codec the body was encoded with.
    pub codec: Codec,
    /// Cell size in bytes (the shuffle stride; 1 when irrelevant).
    pub cell_size: u8,
    /// Decoded payload length.
    pub orig_len: u64,
    /// Body length following the header.
    pub comp_len: u64,
}

/// Strictly validate a frame header against `buf`. Returns `None` unless
/// the magic, version, codec tag, reserved bytes and — decisively — the
/// `comp_len == remaining bytes` equation all hold, so legacy RLE streams
/// and raw payloads practically never sniff as frames.
pub fn sniff_frame(buf: &[u8]) -> Option<FrameHeader> {
    if buf.len() < FRAME_HEADER_LEN {
        return None;
    }
    if buf[0..2] != FRAME_MAGIC || buf[2] != FRAME_VERSION {
        return None;
    }
    let codec = Codec::from_tag(buf[3])?;
    let cell_size = buf[4];
    if cell_size == 0 || buf[5..8] != [0, 0, 0] {
        return None;
    }
    let orig_len = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    let comp_len = u64::from_le_bytes(buf[16..24].try_into().unwrap());
    if comp_len != (buf.len() - FRAME_HEADER_LEN) as u64 {
        return None;
    }
    if codec == Codec::Raw && comp_len != orig_len {
        return None;
    }
    Some(FrameHeader {
        codec,
        cell_size,
        orig_len,
        comp_len,
    })
}

fn push_header(out: &mut BytesMut, codec: Codec, cell_size: u8, orig_len: u64) {
    out.extend_from_slice(&FRAME_MAGIC);
    out.put_u8(FRAME_VERSION);
    out.put_u8(codec.tag());
    out.put_u8(cell_size);
    out.extend_from_slice(&[0, 0, 0]);
    out.extend_from_slice(&orig_len.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes()); // comp_len patched below
}

fn patch_comp_len(out: &mut BytesMut) {
    let comp = (out.len() - FRAME_HEADER_LEN) as u64;
    out[16..24].copy_from_slice(&comp.to_le_bytes());
}

/// How [`encode_wire`] picks a codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecPolicy {
    /// Force one codec instead of probing (the expansion guard still
    /// falls back to `Raw` when the forced codec would grow the payload).
    pub forced: Option<Codec>,
    /// Total probe budget in bytes, sampled in chunks spread across the
    /// payload. Small by design: the probe must stay well under 1% of a
    /// full pass over the payload.
    pub probe_bytes: usize,
    /// Probe ratio (`compressed / original`) above which the payload is
    /// judged incompressible and passed through raw.
    pub raw_threshold: f64,
}

impl Default for CodecPolicy {
    fn default() -> CodecPolicy {
        CodecPolicy {
            forced: None,
            probe_bytes: 2 * 1024,
            raw_threshold: 0.95,
        }
    }
}

/// Probe up to four chunks spread across the payload and return the
/// cheapest codec by sampled ratio.
fn probe_select(payload: &[u8], cell_size: usize, policy: &CodecPolicy) -> Codec {
    let n = payload.len();
    let budget = policy.probe_bytes.clamp(512, n.max(512)).min(n);
    // Chunks aligned to the cell size so the shuffle probe sees whole cells.
    let chunk = (budget / 4).max(128) / cell_size.max(1) * cell_size.max(1);
    let chunk = chunk.max(cell_size.max(1)).min(n);
    let mut sampled = 0usize;
    let mut rle_bytes = 0usize;
    let mut shuf_bytes = 0usize;
    let mut scratch = BytesMut::with_capacity(chunk + chunk / 64 + 16);
    let steps = if chunk >= n {
        1
    } else {
        (budget / chunk).max(1)
    };
    for s in 0..steps {
        let at = if steps == 1 {
            0
        } else {
            // spread chunks across the payload, aligned to whole cells
            (n - chunk) / (steps - 1).max(1) * s / cell_size.max(1) * cell_size.max(1)
        };
        let sample = &payload[at..(at + chunk).min(n)];
        sampled += sample.len();
        scratch.clear();
        rle_compress_into(sample, &mut scratch);
        rle_bytes += scratch.len();
        if cell_size > 1 {
            let shuffled = shuffle(sample, cell_size);
            scratch.clear();
            rle_compress_into(&shuffled, &mut scratch);
            shuf_bytes += scratch.len();
        }
    }
    if sampled == 0 {
        return Codec::Raw;
    }
    let r_rle = rle_bytes as f64 / sampled as f64;
    let r_shuf = if cell_size > 1 {
        // A shuffled payload must be decoded whole; charge the frame
        // nothing here (it is O(1)) but require a real win over plain RLE.
        shuf_bytes as f64 / sampled as f64
    } else {
        f64::INFINITY
    };
    let best = r_rle.min(r_shuf);
    if best > policy.raw_threshold {
        Codec::Raw
    } else if r_shuf < r_rle {
        Codec::ShuffleRle
    } else {
        Codec::Rle
    }
}

fn encode_raw(payload: &Bytes) -> (Bytes, Codec) {
    // An untagged raw payload must not look like a frame, or the decoder
    // would misread it. Vanishingly rare; costs one copy when it happens.
    if sniff_frame(payload).is_some() {
        let mut out = BytesMut::with_capacity(FRAME_HEADER_LEN + payload.len());
        push_header(&mut out, Codec::Raw, 1, payload.len() as u64);
        out.extend_from_slice(payload);
        patch_comp_len(&mut out);
        (out.freeze(), Codec::Raw)
    } else {
        (payload.clone(), Codec::Raw)
    }
}

/// Encode one payload for the tertiary channel. Returns the wire bytes
/// and the codec actually used. `Raw` selections are zero-copy (a
/// refcount bump on `payload`); `Rle`/`ShuffleRle` emit a framed stream
/// and fall back to `Raw` if the encoded form would not shrink.
pub fn encode_wire(payload: &Bytes, cell_size: usize, policy: &CodecPolicy) -> (Bytes, Codec) {
    let n = payload.len();
    if n == 0 {
        return (payload.clone(), Codec::Raw);
    }
    let cs = cell_size.clamp(1, 255);
    let choice = match policy.forced {
        Some(c) => c,
        None => probe_select(payload, cs, policy),
    };
    match choice {
        Codec::Raw => encode_raw(payload),
        Codec::Rle => {
            let mut out = BytesMut::with_capacity(FRAME_HEADER_LEN + n / 2 + 16);
            push_header(&mut out, Codec::Rle, cs as u8, n as u64);
            rle_compress_into(payload, &mut out);
            if out.len() >= n {
                encode_raw(payload)
            } else {
                patch_comp_len(&mut out);
                (out.freeze(), Codec::Rle)
            }
        }
        Codec::ShuffleRle => {
            let shuffled = shuffle(payload, cs);
            let mut out = BytesMut::with_capacity(FRAME_HEADER_LEN + n / 2 + 16);
            push_header(&mut out, Codec::ShuffleRle, cs as u8, n as u64);
            rle_compress_into(&shuffled, &mut out);
            if out.len() >= n {
                encode_raw(payload)
            } else {
                patch_comp_len(&mut out);
                (out.freeze(), Codec::ShuffleRle)
            }
        }
    }
}

/// Why a wire payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame body or legacy stream is not valid RLE.
    Corrupt(&'static str),
    /// The decoded length disagrees with the expected / declared length.
    LengthMismatch {
        /// Length the catalog (or frame header) promised.
        expected: u64,
        /// Length the decode actually produced (or declared).
        got: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Corrupt(what) => write!(f, "corrupt wire payload: {what}"),
            WireError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "wire payload length mismatch: expected {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

fn decode_rle_exact(body: &[u8], expected: u64, what: &'static str) -> Result<Bytes, WireError> {
    let mut out = BytesMut::with_capacity(expected as usize);
    let written = rle_decompress_into(body, &mut out).ok_or(WireError::Corrupt(what))? as u64;
    if written != expected {
        return Err(WireError::LengthMismatch {
            expected,
            got: written,
        });
    }
    Ok(out.freeze())
}

/// Decode a wire payload produced by [`encode_wire`] — or by the
/// pre-frame system, whose archives were untagged RLE streams.
/// `expected_len` is the decoded payload length the catalog recorded for
/// this super-tile; it disambiguates untagged raw (wire length equals it)
/// from legacy RLE (wire length differs) without scanning, so the raw
/// path stays O(1). Returns the decoded bytes (zero-copy for raw) and the
/// codec that was on the wire.
pub fn decode_wire(wire: &Bytes, expected_len: u64) -> Result<(Bytes, Codec), WireError> {
    if let Some(h) = sniff_frame(wire) {
        if h.orig_len != expected_len {
            return Err(WireError::LengthMismatch {
                expected: expected_len,
                got: h.orig_len,
            });
        }
        let body = wire.slice(FRAME_HEADER_LEN..);
        return match h.codec {
            Codec::Raw => Ok((body, Codec::Raw)),
            Codec::Rle => {
                let out = decode_rle_exact(&body, h.orig_len, "rle frame body")?;
                Ok((out, Codec::Rle))
            }
            Codec::ShuffleRle => {
                let mut scratch = BytesMut::with_capacity(h.orig_len as usize);
                let written = rle_decompress_into(&body, &mut scratch)
                    .ok_or(WireError::Corrupt("shuffle frame body"))?
                    as u64;
                if written != h.orig_len {
                    return Err(WireError::LengthMismatch {
                        expected: h.orig_len,
                        got: written,
                    });
                }
                let out = unshuffle(&scratch, h.cell_size as usize);
                Ok((Bytes::from(out), Codec::ShuffleRle))
            }
        };
    }
    if wire.len() as u64 == expected_len {
        return Ok((wire.clone(), Codec::Raw));
    }
    let out = decode_rle_exact(wire, expected_len, "legacy rle stream")?;
    Ok((out, Codec::Rle))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = rle_compress(data);
        assert_eq!(rle_decompress(&c).as_deref(), Some(data));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(&[]);
        roundtrip(&[7]);
        roundtrip(&[7, 7]);
        roundtrip(&[7, 7, 7]);
        roundtrip(&[1, 2, 3]);
    }

    #[test]
    fn long_runs_compress_well() {
        let data = vec![0u8; 10_000];
        let c = rle_compress(&data);
        assert!(c.len() < 200, "10k zeros -> {} bytes", c.len());
        roundtrip(&data);
    }

    #[test]
    fn mixed_content_roundtrips() {
        let mut data = Vec::new();
        for i in 0..5000u32 {
            if i % 7 == 0 {
                data.extend_from_slice(&[0; 13]);
            }
            data.push((i % 251) as u8);
        }
        roundtrip(&data);
        assert!(rle_ratio(&data) < 1.0);
    }

    #[test]
    fn incompressible_overhead_is_bounded() {
        // strictly alternating bytes: no runs at all
        let data: Vec<u8> = (0..10_000).map(|i| (i % 2) as u8 * 255).collect();
        let c = rle_compress(&data);
        // 1 tag byte per 128 literals ≈ 0.8 % overhead
        assert!(c.len() <= data.len() + data.len() / 100 + 16);
        roundtrip(&data);
    }

    #[test]
    fn run_lengths_at_format_boundaries() {
        for len in [2usize, 3, 128, 129, 130, 257, 259] {
            let mut data = vec![9u8; len];
            data.push(1);
            data.push(2);
            roundtrip(&data);
        }
        // literal run boundaries
        for len in [127usize, 128, 129, 256] {
            let data: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn malformed_streams_rejected() {
        assert_eq!(rle_decompress(&[5]), None); // literal run truncated
        assert_eq!(rle_decompress(&[0x80]), None); // repeat missing byte
        assert!(rle_decompress(&[0x80, 7]).is_some());
    }

    /// Deterministic pseudo-random bytes (xorshift64*), no rand needed.
    fn noise(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8
            })
            .collect()
    }

    /// Blocky label raster: runs of varying length, a few distinct values.
    fn classified(seed: u64, len: usize) -> Vec<u8> {
        let r = noise(seed, len / 8 + 2);
        let mut out = Vec::with_capacity(len);
        let mut k = 0;
        while out.len() < len {
            let run = 1 + (r[k % r.len()] as usize % 200);
            let val = r[(k + 1) % r.len()] % 7;
            for _ in 0..run.min(len - out.len()) {
                out.push(val);
            }
            k += 2;
        }
        out
    }

    #[test]
    fn fast_encoder_matches_baseline_bytes() {
        for data in [
            Vec::new(),
            vec![3u8; 1],
            vec![3u8; 500],
            noise(42, 4096),
            classified(7, 4096),
            (0..1500u32).map(|i| (i % 3) as u8).collect(),
        ] {
            assert_eq!(rle_compress(&data), baseline::rle_compress(&data));
        }
    }

    #[test]
    fn fast_decoder_accepts_baseline_output_and_vice_versa() {
        for data in [noise(3, 2048), classified(11, 6000), vec![0u8; 777]] {
            let old = baseline::rle_compress(&data);
            let new = rle_compress(&data);
            assert_eq!(rle_decompress(&old).as_deref(), Some(&data[..]));
            assert_eq!(baseline::rle_decompress(&new).as_deref(), Some(&data[..]));
        }
    }

    #[test]
    fn decompress_into_appends_and_reports_len() {
        let mut out = BytesMut::new();
        out.extend_from_slice(b"prefix");
        let wire = rle_compress(&[9u8; 300]);
        let written = rle_decompress_into(&wire, &mut out).unwrap();
        assert_eq!(written, 300);
        assert_eq!(&out[..6], b"prefix");
        assert!(out[6..].iter().all(|&b| b == 9));
    }

    #[test]
    fn shuffle_roundtrips_all_cell_sizes() {
        let data = noise(5, 1000);
        for cell in [1usize, 2, 3, 4, 7, 8] {
            let s = shuffle(&data, cell);
            assert_eq!(s.len(), data.len());
            assert_eq!(unshuffle(&s, cell), data);
        }
        // tail shorter than a cell
        assert_eq!(unshuffle(&shuffle(&data[..5], 8), 8), &data[..5]);
    }

    #[test]
    fn shuffle_exposes_runs_in_multibyte_cells() {
        // a slowly increasing i32 ramp: high bytes are constant-ish
        let mut data = Vec::new();
        for i in 0..4096i32 {
            data.extend_from_slice(&i.to_le_bytes());
        }
        let plain = rle_compress(&data).len();
        let shuf = rle_compress(&shuffle(&data, 4)).len();
        assert!(shuf < plain / 2, "shuffled {shuf} vs plain {plain}");
    }

    #[test]
    fn frame_roundtrips_per_codec() {
        let data = Bytes::from(classified(1, 9000));
        for forced in [Codec::Rle, Codec::ShuffleRle] {
            let policy = CodecPolicy {
                forced: Some(forced),
                ..CodecPolicy::default()
            };
            let (wire, used) = encode_wire(&data, 4, &policy);
            assert_eq!(used, forced);
            assert!(sniff_frame(&wire).is_some());
            let (back, codec) = decode_wire(&wire, data.len() as u64).unwrap();
            assert_eq!(codec, forced);
            assert_eq!(back, data);
        }
    }

    #[test]
    fn adaptive_picks_raw_for_noise_and_rle_for_runs() {
        let policy = CodecPolicy::default();
        let rnd = Bytes::from(noise(9, 64 * 1024));
        let (wire, codec) = encode_wire(&rnd, 1, &policy);
        assert_eq!(codec, Codec::Raw);
        assert_eq!(wire.len(), rnd.len());
        // zero-copy: same backing allocation
        assert_eq!(wire.as_slice().as_ptr(), rnd.as_slice().as_ptr());
        let (back, _) = decode_wire(&wire, rnd.len() as u64).unwrap();
        assert_eq!(back.as_slice().as_ptr(), rnd.as_slice().as_ptr());

        let runs = Bytes::from(classified(2, 64 * 1024));
        let (wire, codec) = encode_wire(&runs, 1, &policy);
        assert_eq!(codec, Codec::Rle);
        assert!(wire.len() < runs.len());
        assert_eq!(decode_wire(&wire, runs.len() as u64).unwrap().0, runs);
    }

    #[test]
    fn adaptive_picks_shuffle_for_multibyte_ramps() {
        let mut data = Vec::new();
        for i in 0..32 * 1024i32 {
            data.extend_from_slice(&i.to_le_bytes());
        }
        let data = Bytes::from(data);
        let (wire, codec) = encode_wire(&data, 4, &CodecPolicy::default());
        assert_eq!(codec, Codec::ShuffleRle);
        assert!(wire.len() < data.len() / 2);
        assert_eq!(decode_wire(&wire, data.len() as u64).unwrap().0, data);
    }

    #[test]
    fn legacy_untagged_rle_still_decodes() {
        let data = classified(4, 20_000);
        let legacy = Bytes::from(baseline::rle_compress(&data));
        let (back, codec) = decode_wire(&legacy, data.len() as u64).unwrap();
        assert_eq!(codec, Codec::Rle);
        assert_eq!(back, data);
    }

    #[test]
    fn raw_payload_that_looks_like_a_frame_gets_framed() {
        // Hand-build bytes that sniff as a valid frame, then ask for raw.
        let mut evil = BytesMut::new();
        push_header(&mut evil, Codec::Raw, 1, 10);
        evil.extend_from_slice(&[1u8; 10]);
        patch_comp_len(&mut evil);
        let evil = evil.freeze();
        assert!(sniff_frame(&evil).is_some());
        let policy = CodecPolicy {
            forced: Some(Codec::Raw),
            ..CodecPolicy::default()
        };
        let (wire, codec) = encode_wire(&evil, 1, &policy);
        assert_eq!(codec, Codec::Raw);
        assert_ne!(wire.len(), evil.len(), "must be wrapped, not untagged");
        let (back, _) = decode_wire(&wire, evil.len() as u64).unwrap();
        assert_eq!(back, evil);
    }

    #[test]
    fn malformed_frames_rejected() {
        let data = Bytes::from(classified(6, 4096));
        let policy = CodecPolicy {
            forced: Some(Codec::ShuffleRle),
            ..CodecPolicy::default()
        };
        let (wire, _) = encode_wire(&data, 4, &policy);

        // wrong expected length
        assert!(decode_wire(&wire, data.len() as u64 + 1).is_err());

        // truncated body: comp_len equation fails, so it no longer sniffs
        // as a frame, and as legacy RLE it decodes to the wrong length.
        let truncated = wire.slice(..wire.len() - 1);
        assert!(decode_wire(&truncated, data.len() as u64).is_err());

        // corrupt declared orig_len
        let mut bad = wire.to_vec();
        bad[8] ^= 0xff;
        assert!(decode_wire(&Bytes::from(bad), data.len() as u64).is_err());

        // well-formed frame around a malformed RLE body
        let mut evil = BytesMut::new();
        push_header(&mut evil, Codec::Rle, 1, 5);
        evil.put_u8(0x7f); // literal tag promising 128 bytes that never come
        patch_comp_len(&mut evil);
        assert_eq!(
            decode_wire(&evil.freeze(), 5),
            Err(WireError::Corrupt("rle frame body"))
        );

        // shuffle frame whose body decodes to the wrong length
        let mut evil = BytesMut::new();
        push_header(&mut evil, Codec::ShuffleRle, 4, 100);
        rle_compress_into(&[1u8; 50], &mut evil);
        patch_comp_len(&mut evil);
        assert_eq!(
            decode_wire(&evil.freeze(), 100),
            Err(WireError::LengthMismatch {
                expected: 100,
                got: 50
            })
        );
    }

    #[test]
    fn frame_sniff_rejects_junk() {
        assert!(sniff_frame(b"").is_none());
        assert!(sniff_frame(b"HV").is_none());
        let mut h = BytesMut::new();
        push_header(&mut h, Codec::Rle, 1, 5);
        h.extend_from_slice(&[0; 3]);
        // comp_len says 0 but 3 bytes follow
        assert!(sniff_frame(&h).is_none());
    }
}
