//! Error type for the array substrate.

use std::fmt;

/// Errors raised by array-model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // struct-variant fields are self-describing
pub enum ArrayError {
    /// Dimensionality of two entities did not match (e.g. a 2-D point used
    /// with a 3-D interval).
    DimensionMismatch { expected: usize, got: usize },
    /// An interval bound was inverted (`lo > hi`).
    InvalidInterval { lo: i64, hi: i64 },
    /// A point lies outside the domain it was used against.
    OutOfDomain { point: Vec<i64>, domain: String },
    /// The requested sub-domain is not contained in the array's domain.
    NotContained { inner: String, outer: String },
    /// Cell types of two operands did not match and no promotion applies.
    TypeMismatch {
        left: &'static str,
        right: &'static str,
    },
    /// A buffer had the wrong length for the (domain, cell type) pair.
    BufferSize { expected: usize, got: usize },
    /// Division by zero in an induced operation or condenser.
    DivisionByZero,
    /// Slice position outside the sliced dimension.
    BadSlice { dim: usize, pos: i64 },
    /// Empty input where at least one element is required.
    Empty(&'static str),
    /// Serialization/deserialization failure for tiles.
    Codec(String),
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            ArrayError::InvalidInterval { lo, hi } => {
                write!(f, "invalid interval: lo {lo} > hi {hi}")
            }
            ArrayError::OutOfDomain { point, domain } => {
                write!(f, "point {point:?} outside domain {domain}")
            }
            ArrayError::NotContained { inner, outer } => {
                write!(f, "domain {inner} not contained in {outer}")
            }
            ArrayError::TypeMismatch { left, right } => {
                write!(f, "cell type mismatch: {left} vs {right}")
            }
            ArrayError::BufferSize { expected, got } => {
                write!(
                    f,
                    "buffer size mismatch: expected {expected} bytes, got {got}"
                )
            }
            ArrayError::DivisionByZero => write!(f, "division by zero"),
            ArrayError::BadSlice { dim, pos } => {
                write!(f, "slice position {pos} outside dimension {dim}")
            }
            ArrayError::Empty(what) => write!(f, "empty input: {what}"),
            ArrayError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for ArrayError {}

/// Convenient result alias for the array substrate.
pub type Result<T> = std::result::Result<T, ArrayError>;
