//! Cell types and scalar cell values.
//!
//! The paper's application domains (climate simulation, remote sensing,
//! computational fluid dynamics) use dense numeric rasters. We support the
//! base types RasDaMan offers for those workloads; a cell type fixes the
//! byte width used for tile sizing and tape-volume math.

use crate::error::{ArrayError, Result};
use std::fmt;

/// Scalar cell type of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellType {
    /// 8-bit unsigned (e.g. classified satellite imagery, vegetation index).
    U8,
    /// 16-bit signed (e.g. raw sensor counts).
    I16,
    /// 32-bit signed.
    I32,
    /// 32-bit IEEE float (e.g. temperature fields).
    F32,
    /// 64-bit IEEE float (e.g. high-precision simulation output).
    F64,
}

impl CellType {
    /// Size of one cell in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            CellType::U8 => 1,
            CellType::I16 => 2,
            CellType::I32 => 4,
            CellType::F32 => 4,
            CellType::F64 => 8,
        }
    }

    /// Human-readable type name (also used by the query language).
    pub fn name(self) -> &'static str {
        match self {
            CellType::U8 => "octet",
            CellType::I16 => "short",
            CellType::I32 => "long",
            CellType::F32 => "float",
            CellType::F64 => "double",
        }
    }

    /// Parse a type name as used by the query language / catalogs.
    pub fn parse(name: &str) -> Option<CellType> {
        match name {
            "octet" | "u8" => Some(CellType::U8),
            "short" | "i16" => Some(CellType::I16),
            "long" | "i32" => Some(CellType::I32),
            "float" | "f32" => Some(CellType::F32),
            "double" | "f64" => Some(CellType::F64),
            _ => None,
        }
    }

    /// Stable numeric tag used in on-media encodings.
    pub fn tag(self) -> u8 {
        match self {
            CellType::U8 => 0,
            CellType::I16 => 1,
            CellType::I32 => 2,
            CellType::F32 => 3,
            CellType::F64 => 4,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: u8) -> Option<CellType> {
        match tag {
            0 => Some(CellType::U8),
            1 => Some(CellType::I16),
            2 => Some(CellType::I32),
            3 => Some(CellType::F32),
            4 => Some(CellType::F64),
            _ => None,
        }
    }

    /// The result type of arithmetic between two cell types
    /// (standard numeric promotion: widest wins, float beats int).
    pub fn promote(self, other: CellType) -> CellType {
        use CellType::*;
        match (self, other) {
            (F64, _) | (_, F64) => F64,
            (F32, _) | (_, F32) => F32,
            (I32, _) | (_, I32) => I32,
            (I16, _) | (_, I16) => I16,
            (U8, U8) => U8,
        }
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, CellType::F32 | CellType::F64)
    }
}

impl fmt::Display for CellType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar cell value (boxed form used at expression boundaries;
/// bulk data lives in raw byte buffers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellValue {
    /// An `octet` cell.
    U8(u8),
    /// A `short` cell.
    I16(i16),
    /// A `long` cell.
    I32(i32),
    /// A `float` cell.
    F32(f32),
    /// A `double` cell.
    F64(f64),
}

impl CellValue {
    /// The value's cell type.
    pub fn cell_type(self) -> CellType {
        match self {
            CellValue::U8(_) => CellType::U8,
            CellValue::I16(_) => CellType::I16,
            CellValue::I32(_) => CellType::I32,
            CellValue::F32(_) => CellType::F32,
            CellValue::F64(_) => CellType::F64,
        }
    }

    /// Value as f64 (lossless for every supported type except very large i64,
    /// which we do not support).
    pub fn as_f64(self) -> f64 {
        match self {
            CellValue::U8(v) => v as f64,
            CellValue::I16(v) => v as f64,
            CellValue::I32(v) => v as f64,
            CellValue::F32(v) => v as f64,
            CellValue::F64(v) => v,
        }
    }

    /// Construct a value of type `ty` from an f64, with saturating casts
    /// for integer targets.
    pub fn from_f64(ty: CellType, v: f64) -> CellValue {
        match ty {
            CellType::U8 => CellValue::U8(v.clamp(0.0, u8::MAX as f64) as u8),
            CellType::I16 => CellValue::I16(v.clamp(i16::MIN as f64, i16::MAX as f64) as i16),
            CellType::I32 => CellValue::I32(v.clamp(i32::MIN as f64, i32::MAX as f64) as i32),
            CellType::F32 => CellValue::F32(v as f32),
            CellType::F64 => CellValue::F64(v),
        }
    }

    /// The additive identity of type `ty`.
    pub fn zero(ty: CellType) -> CellValue {
        CellValue::from_f64(ty, 0.0)
    }

    /// Read the cell at byte offset `off * size` from a raw buffer.
    pub fn read(ty: CellType, buf: &[u8], index: usize) -> Result<CellValue> {
        let sz = ty.size_bytes();
        let start = index * sz;
        let end = start + sz;
        if end > buf.len() {
            return Err(ArrayError::BufferSize {
                expected: end,
                got: buf.len(),
            });
        }
        let b = &buf[start..end];
        Ok(match ty {
            CellType::U8 => CellValue::U8(b[0]),
            CellType::I16 => CellValue::I16(i16::from_le_bytes([b[0], b[1]])),
            CellType::I32 => CellValue::I32(i32::from_le_bytes([b[0], b[1], b[2], b[3]])),
            CellType::F32 => CellValue::F32(f32::from_le_bytes([b[0], b[1], b[2], b[3]])),
            CellType::F64 => CellValue::F64(f64::from_le_bytes([
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            ])),
        })
    }

    /// Write the cell at element index `index` into a raw buffer.
    pub fn write(self, buf: &mut [u8], index: usize) -> Result<()> {
        let ty = self.cell_type();
        let sz = ty.size_bytes();
        let start = index * sz;
        let end = start + sz;
        if end > buf.len() {
            return Err(ArrayError::BufferSize {
                expected: end,
                got: buf.len(),
            });
        }
        let dst = &mut buf[start..end];
        match self {
            CellValue::U8(v) => dst.copy_from_slice(&[v]),
            CellValue::I16(v) => dst.copy_from_slice(&v.to_le_bytes()),
            CellValue::I32(v) => dst.copy_from_slice(&v.to_le_bytes()),
            CellValue::F32(v) => dst.copy_from_slice(&v.to_le_bytes()),
            CellValue::F64(v) => dst.copy_from_slice(&v.to_le_bytes()),
        }
        Ok(())
    }
}

/// Monomorphized little-endian scalar access for bulk kernels.
///
/// Condensers and induced operations iterate millions of cells; going
/// through [`CellValue::read`] per cell means a bounds check, a type
/// match and an enum construction each time. Kernels generic over
/// `Scalar` instead walk `chunks_exact(SIZE)` over the contiguous cell
/// buffer, which the compiler unrolls and autovectorizes. Conversion
/// semantics (f64 widening, saturating narrowing) match `CellValue`
/// exactly so results are bit-identical to the scalar path.
pub(crate) trait Scalar: Copy {
    /// Cell width in bytes ([`CellType::size_bytes`]).
    const SIZE: usize;
    /// Read one cell from a `SIZE`-byte little-endian slice.
    fn from_le(b: &[u8]) -> Self;
    /// Write one cell into a `SIZE`-byte slice.
    fn write_le(self, b: &mut [u8]);
    /// Widen to f64 (lossless for all supported types).
    fn to_f64(self) -> f64;
    /// Narrow from f64 with the same saturation as [`CellValue::from_f64`].
    fn from_f64(v: f64) -> Self;
}

impl Scalar for u8 {
    const SIZE: usize = 1;
    #[inline(always)]
    fn from_le(b: &[u8]) -> u8 {
        b[0]
    }
    #[inline(always)]
    fn write_le(self, b: &mut [u8]) {
        b[0] = self;
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn from_f64(v: f64) -> u8 {
        v.clamp(0.0, u8::MAX as f64) as u8
    }
}

impl Scalar for i16 {
    const SIZE: usize = 2;
    #[inline(always)]
    fn from_le(b: &[u8]) -> i16 {
        i16::from_le_bytes([b[0], b[1]])
    }
    #[inline(always)]
    fn write_le(self, b: &mut [u8]) {
        b.copy_from_slice(&self.to_le_bytes());
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn from_f64(v: f64) -> i16 {
        v.clamp(i16::MIN as f64, i16::MAX as f64) as i16
    }
}

impl Scalar for i32 {
    const SIZE: usize = 4;
    #[inline(always)]
    fn from_le(b: &[u8]) -> i32 {
        i32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }
    #[inline(always)]
    fn write_le(self, b: &mut [u8]) {
        b.copy_from_slice(&self.to_le_bytes());
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn from_f64(v: f64) -> i32 {
        v.clamp(i32::MIN as f64, i32::MAX as f64) as i32
    }
}

impl Scalar for f32 {
    const SIZE: usize = 4;
    #[inline(always)]
    fn from_le(b: &[u8]) -> f32 {
        f32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }
    #[inline(always)]
    fn write_le(self, b: &mut [u8]) {
        b.copy_from_slice(&self.to_le_bytes());
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
}

impl Scalar for f64 {
    const SIZE: usize = 8;
    #[inline(always)]
    fn from_le(b: &[u8]) -> f64 {
        f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }
    #[inline(always)]
    fn write_le(self, b: &mut [u8]) {
        b.copy_from_slice(&self.to_le_bytes());
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn from_f64(v: f64) -> f64 {
        v
    }
}

/// Dispatch a [`CellType`] to a monomorphized block: binds the type
/// alias `$S` to the matching [`Scalar`] implementation and evaluates
/// `$body` once per variant.
macro_rules! with_scalar {
    ($ty:expr, $S:ident, $body:block) => {
        match $ty {
            $crate::value::CellType::U8 => {
                type $S = u8;
                $body
            }
            $crate::value::CellType::I16 => {
                type $S = i16;
                $body
            }
            $crate::value::CellType::I32 => {
                type $S = i32;
                $body
            }
            $crate::value::CellType::F32 => {
                type $S = f32;
                $body
            }
            $crate::value::CellType::F64 => {
                type $S = f64;
                $body
            }
        }
    };
}
pub(crate) use with_scalar;

impl fmt::Display for CellValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellValue::U8(v) => write!(f, "{v}"),
            CellValue::I16(v) => write!(f, "{v}"),
            CellValue::I32(v) => write!(f, "{v}"),
            CellValue::F32(v) => write!(f, "{v}"),
            CellValue::F64(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_names() {
        assert_eq!(CellType::U8.size_bytes(), 1);
        assert_eq!(CellType::F64.size_bytes(), 8);
        assert_eq!(CellType::parse("float"), Some(CellType::F32));
        assert_eq!(CellType::parse("double"), Some(CellType::F64));
        assert_eq!(CellType::parse("bogus"), None);
    }

    #[test]
    fn tag_roundtrip() {
        for ty in [
            CellType::U8,
            CellType::I16,
            CellType::I32,
            CellType::F32,
            CellType::F64,
        ] {
            assert_eq!(CellType::from_tag(ty.tag()), Some(ty));
        }
        assert_eq!(CellType::from_tag(99), None);
    }

    #[test]
    fn promotion_prefers_wider_and_float() {
        assert_eq!(CellType::U8.promote(CellType::I16), CellType::I16);
        assert_eq!(CellType::I32.promote(CellType::F32), CellType::F32);
        assert_eq!(CellType::F32.promote(CellType::F64), CellType::F64);
        assert_eq!(CellType::U8.promote(CellType::U8), CellType::U8);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut buf = vec![0u8; 4 * 8];
        for (i, v) in [1.5f64, -2.25, 0.0, 1e9].iter().enumerate() {
            CellValue::F64(*v).write(&mut buf, i).unwrap();
        }
        for (i, v) in [1.5f64, -2.25, 0.0, 1e9].iter().enumerate() {
            assert_eq!(
                CellValue::read(CellType::F64, &buf, i).unwrap(),
                CellValue::F64(*v)
            );
        }
    }

    #[test]
    fn read_out_of_bounds_is_error() {
        let buf = vec![0u8; 7];
        assert!(CellValue::read(CellType::F64, &buf, 0).is_err());
        assert!(CellValue::read(CellType::U8, &buf, 7).is_err());
    }

    #[test]
    fn from_f64_saturates_integers() {
        assert_eq!(CellValue::from_f64(CellType::U8, 300.0), CellValue::U8(255));
        assert_eq!(CellValue::from_f64(CellType::U8, -5.0), CellValue::U8(0));
        assert_eq!(
            CellValue::from_f64(CellType::I16, 1e9),
            CellValue::I16(i16::MAX)
        );
    }
}
