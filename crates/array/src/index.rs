//! Multidimensional tile indexes.
//!
//! RasDaMan locates the tiles intersecting a query box through a
//! multidimensional index (paper §2.6.4). We provide two:
//!
//! * [`GridIndex`] — a directory index for *aligned* (regular) tilings:
//!   O(result) lookup by pure arithmetic, the common case in HEAVEN;
//! * [`RTreeIndex`] — an R-tree with quadratic split for arbitrary tile
//!   layouts (border-clipped or directional tilings, framed objects).
//!
//! Both index `(Minterval → TileId)` pairs and answer box-intersection
//! queries.

use crate::domain::Minterval;
use crate::error::{ArrayError, Result};
use crate::tile::TileId;

/// Common interface of tile indexes.
pub trait TileIndex {
    /// Register a tile domain.
    fn insert(&mut self, domain: Minterval, id: TileId) -> Result<()>;
    /// Remove a tile by id; returns whether it existed.
    fn remove(&mut self, id: TileId) -> bool;
    /// Ids of all tiles whose domain intersects `query`.
    fn lookup(&self, query: &Minterval) -> Vec<TileId>;
    /// Number of indexed tiles.
    fn len(&self) -> usize;
    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Grid directory index
// ---------------------------------------------------------------------------

/// Directory index over a regular tile grid.
///
/// Knows the object domain and the tile shape; a query box is converted to a
/// grid-coordinate range and the directory cells in that range are returned.
#[derive(Debug, Clone)]
pub struct GridIndex {
    domain: Minterval,
    tile_shape: Vec<u64>,
    counts: Vec<u64>,
    /// Directory: row-major over grid coordinates; `None` = tile absent.
    cells: Vec<Option<TileId>>,
    len: usize,
}

impl GridIndex {
    /// Create an empty grid index for `domain` tiled by `tile_shape`.
    pub fn new(domain: Minterval, tile_shape: Vec<u64>) -> Result<GridIndex> {
        if tile_shape.len() != domain.dim() {
            return Err(ArrayError::DimensionMismatch {
                expected: domain.dim(),
                got: tile_shape.len(),
            });
        }
        if tile_shape.contains(&0) {
            return Err(ArrayError::Empty("tile edge"));
        }
        let counts: Vec<u64> = (0..domain.dim())
            .map(|i| domain.axis(i).extent().div_ceil(tile_shape[i]))
            .collect();
        let total: u64 = counts.iter().product();
        Ok(GridIndex {
            domain,
            tile_shape,
            counts,
            cells: vec![None; total as usize],
            len: 0,
        })
    }

    fn grid_offset(&self, gc: &[u64]) -> usize {
        let mut off: u64 = 0;
        for (c, n) in gc.iter().zip(&self.counts) {
            off = off * n + c;
        }
        off as usize
    }

    /// Grid coordinate of the tile whose lower corner is `tile_lo`.
    fn grid_coord(&self, tile: &Minterval) -> Result<Vec<u64>> {
        let mut gc = Vec::with_capacity(self.domain.dim());
        for i in 0..self.domain.dim() {
            let rel = tile.axis(i).lo - self.domain.axis(i).lo;
            if rel < 0 {
                return Err(ArrayError::NotContained {
                    inner: tile.to_string(),
                    outer: self.domain.to_string(),
                });
            }
            let c = rel as u64 / self.tile_shape[i];
            if c >= self.counts[i] {
                return Err(ArrayError::NotContained {
                    inner: tile.to_string(),
                    outer: self.domain.to_string(),
                });
            }
            gc.push(c);
        }
        Ok(gc)
    }
}

impl TileIndex for GridIndex {
    fn insert(&mut self, domain: Minterval, id: TileId) -> Result<()> {
        let gc = self.grid_coord(&domain)?;
        let off = self.grid_offset(&gc);
        if self.cells[off].is_none() {
            self.len += 1;
        }
        self.cells[off] = Some(id);
        Ok(())
    }

    fn remove(&mut self, id: TileId) -> bool {
        for c in self.cells.iter_mut() {
            if *c == Some(id) {
                *c = None;
                self.len -= 1;
                return true;
            }
        }
        false
    }

    fn lookup(&self, query: &Minterval) -> Vec<TileId> {
        if query.dim() != self.domain.dim() {
            return Vec::new();
        }
        let q = match self.domain.intersection(query) {
            Some(q) => q,
            None => return Vec::new(),
        };
        // Grid coordinate range touched by the query.
        let d = self.domain.dim();
        let mut ranges = Vec::with_capacity(d);
        for i in 0..d {
            let lo = (q.axis(i).lo - self.domain.axis(i).lo) as u64 / self.tile_shape[i];
            let hi = (q.axis(i).hi - self.domain.axis(i).lo) as u64 / self.tile_shape[i];
            ranges.push((lo, hi.min(self.counts[i] - 1)));
        }
        let mut out = Vec::new();
        let mut gc: Vec<u64> = ranges.iter().map(|&(lo, _)| lo).collect();
        loop {
            if let Some(id) = self.cells[self.grid_offset(&gc)] {
                out.push(id);
            }
            // odometer over grid ranges
            let mut i = d;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                gc[i] += 1;
                if gc[i] <= ranges[i].1 {
                    break;
                }
                gc[i] = ranges[i].0;
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// R-tree index
// ---------------------------------------------------------------------------

const RTREE_MAX: usize = 8;
const RTREE_MIN: usize = 3;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<(Minterval, TileId)>,
    },
    Inner {
        entries: Vec<(Minterval, Box<Node>)>,
    },
}

impl Node {
    fn mbr(&self) -> Option<Minterval> {
        let boxes: Vec<&Minterval> = match self {
            Node::Leaf { entries } => entries.iter().map(|(b, _)| b).collect(),
            Node::Inner { entries } => entries.iter().map(|(b, _)| b).collect(),
        };
        let mut it = boxes.into_iter();
        let first = it.next()?.clone();
        Some(it.fold(first, |acc, b| acc.hull(b).expect("same dim")))
    }
}

/// R-tree over tile bounding boxes with quadratic split.
#[derive(Debug, Clone)]
pub struct RTreeIndex {
    root: Node,
    len: usize,
    dim: Option<usize>,
}

impl Default for RTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl RTreeIndex {
    /// Create an empty R-tree.
    pub fn new() -> RTreeIndex {
        RTreeIndex {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
            dim: None,
        }
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Inner { entries } = node {
            h += 1;
            node = &entries[0].1;
        }
        h
    }

    fn insert_rec(node: &mut Node, domain: &Minterval, id: TileId) -> Option<Node> {
        match node {
            Node::Leaf { entries } => {
                entries.push((domain.clone(), id));
                if entries.len() > RTREE_MAX {
                    let split = quadratic_split(entries);
                    Some(Node::Leaf { entries: split })
                } else {
                    None
                }
            }
            Node::Inner { entries } => {
                // Choose subtree with least enlargement.
                let mut best = 0usize;
                let mut best_delta = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for (i, (mbr, _)) in entries.iter().enumerate() {
                    let area = volume(mbr);
                    let grown = volume(&mbr.hull(domain).expect("same dim"));
                    let delta = grown - area;
                    if delta < best_delta || (delta == best_delta && area < best_area) {
                        best = i;
                        best_delta = delta;
                        best_area = area;
                    }
                }
                let overflow = Self::insert_rec(&mut entries[best].1, domain, id);
                entries[best].0 = entries[best].1.mbr().expect("non-empty after insert");
                if let Some(new_node) = overflow {
                    let mbr = new_node.mbr().expect("split node non-empty");
                    entries.push((mbr, Box::new(new_node)));
                    if entries.len() > RTREE_MAX {
                        let split = quadratic_split_inner(entries);
                        return Some(Node::Inner { entries: split });
                    }
                }
                None
            }
        }
    }

    fn lookup_rec(node: &Node, query: &Minterval, out: &mut Vec<TileId>) {
        match node {
            Node::Leaf { entries } => {
                for (b, id) in entries {
                    if b.intersects(query) {
                        out.push(*id);
                    }
                }
            }
            Node::Inner { entries } => {
                for (mbr, child) in entries {
                    if mbr.intersects(query) {
                        Self::lookup_rec(child, query, out);
                    }
                }
            }
        }
    }

    fn remove_rec(node: &mut Node, id: TileId) -> bool {
        match node {
            Node::Leaf { entries } => {
                let before = entries.len();
                entries.retain(|&(_, tid)| tid != id);
                entries.len() != before
            }
            Node::Inner { entries } => {
                for (mbr, child) in entries.iter_mut() {
                    if Self::remove_rec(child, id) {
                        if let Some(new_mbr) = child.mbr() {
                            *mbr = new_mbr;
                        }
                        return true;
                    }
                }
                // prune empty children
                false
            }
        }
    }
}

fn volume(m: &Minterval) -> f64 {
    m.axes().iter().map(|a| a.extent() as f64).product()
}

/// Quadratic split for leaf entries: picks the pair wasting the most space
/// as seeds, then assigns remaining entries to the group whose MBR grows
/// least. Returns the entries of the *new* node; `entries` keeps the rest.
fn quadratic_split(entries: &mut Vec<(Minterval, TileId)>) -> Vec<(Minterval, TileId)> {
    let (s1, s2) = pick_seeds(entries.iter().map(|(b, _)| b));
    distribute(entries, s1, s2)
}

fn quadratic_split_inner(entries: &mut Vec<(Minterval, Box<Node>)>) -> Vec<(Minterval, Box<Node>)> {
    let (s1, s2) = pick_seeds(entries.iter().map(|(b, _)| b));
    distribute(entries, s1, s2)
}

fn pick_seeds<'a, I: Iterator<Item = &'a Minterval> + Clone>(boxes: I) -> (usize, usize) {
    let v: Vec<&Minterval> = boxes.collect();
    let mut worst = f64::NEG_INFINITY;
    let mut pair = (0, 1);
    for i in 0..v.len() {
        for j in (i + 1)..v.len() {
            let waste = volume(&v[i].hull(v[j]).expect("same dim")) - volume(v[i]) - volume(v[j]);
            if waste > worst {
                worst = waste;
                pair = (i, j);
            }
        }
    }
    pair
}

fn distribute<T>(entries: &mut Vec<(Minterval, T)>, s1: usize, s2: usize) -> Vec<(Minterval, T)> {
    // Pull the two seeds out first (remove higher index first).
    let (hi, lo) = if s1 > s2 { (s1, s2) } else { (s2, s1) };
    let seed_b = entries.remove(hi);
    let seed_a = entries.remove(lo);
    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut mbr_a = group_a[0].0.clone();
    let mut mbr_b = group_b[0].0.clone();
    while let Some(e) = entries.pop() {
        // Force balance if one group risks underflow.
        let remaining = entries.len();
        if group_a.len() + remaining < RTREE_MIN {
            mbr_a = mbr_a.hull(&e.0).expect("same dim");
            group_a.push(e);
            continue;
        }
        if group_b.len() + remaining < RTREE_MIN {
            mbr_b = mbr_b.hull(&e.0).expect("same dim");
            group_b.push(e);
            continue;
        }
        let grow_a = volume(&mbr_a.hull(&e.0).expect("same dim")) - volume(&mbr_a);
        let grow_b = volume(&mbr_b.hull(&e.0).expect("same dim")) - volume(&mbr_b);
        if grow_a <= grow_b {
            mbr_a = mbr_a.hull(&e.0).expect("same dim");
            group_a.push(e);
        } else {
            mbr_b = mbr_b.hull(&e.0).expect("same dim");
            group_b.push(e);
        }
    }
    *entries = group_a;
    group_b
}

impl TileIndex for RTreeIndex {
    fn insert(&mut self, domain: Minterval, id: TileId) -> Result<()> {
        match self.dim {
            None => self.dim = Some(domain.dim()),
            Some(d) if d != domain.dim() => {
                return Err(ArrayError::DimensionMismatch {
                    expected: d,
                    got: domain.dim(),
                })
            }
            _ => {}
        }
        if let Some(new_node) = Self::insert_rec(&mut self.root, &domain, id) {
            // Root split: grow the tree.
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    entries: Vec::new(),
                },
            );
            let mbr_old = old_root.mbr().expect("non-empty");
            let mbr_new = new_node.mbr().expect("non-empty");
            self.root = Node::Inner {
                entries: vec![(mbr_old, Box::new(old_root)), (mbr_new, Box::new(new_node))],
            };
        }
        self.len += 1;
        Ok(())
    }

    fn remove(&mut self, id: TileId) -> bool {
        let removed = Self::remove_rec(&mut self.root, id);
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn lookup(&self, query: &Minterval) -> Vec<TileId> {
        let mut out = Vec::new();
        Self::lookup_rec(&self.root, query, &mut out);
        out
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling::Tiling;
    use crate::value::CellType;

    fn mi(b: &[(i64, i64)]) -> Minterval {
        Minterval::new(b).unwrap()
    }

    fn populated_indexes() -> (GridIndex, RTreeIndex, Vec<Minterval>) {
        let dom = mi(&[(0, 99), (0, 99)]);
        let tiling = Tiling::Regular {
            tile_shape: vec![10, 10],
        };
        let tiles = tiling.tile_domains(&dom, CellType::U8).unwrap();
        let mut grid = GridIndex::new(dom, vec![10, 10]).unwrap();
        let mut rtree = RTreeIndex::new();
        for (i, t) in tiles.iter().enumerate() {
            grid.insert(t.clone(), i as TileId).unwrap();
            rtree.insert(t.clone(), i as TileId).unwrap();
        }
        (grid, rtree, tiles)
    }

    fn brute_force(tiles: &[Minterval], q: &Minterval) -> Vec<TileId> {
        tiles
            .iter()
            .enumerate()
            .filter(|(_, t)| t.intersects(q))
            .map(|(i, _)| i as TileId)
            .collect()
    }

    #[test]
    fn grid_and_rtree_agree_with_brute_force() {
        let (grid, rtree, tiles) = populated_indexes();
        assert_eq!(grid.len(), 100);
        assert_eq!(rtree.len(), 100);
        let queries = [
            mi(&[(0, 0), (0, 0)]),
            mi(&[(5, 15), (5, 15)]),
            mi(&[(0, 99), (0, 99)]),
            mi(&[(95, 99), (0, 99)]),
            mi(&[(33, 66), (21, 22)]),
        ];
        for q in &queries {
            let mut expect = brute_force(&tiles, q);
            expect.sort_unstable();
            let mut got_grid = grid.lookup(q);
            got_grid.sort_unstable();
            let mut got_rtree = rtree.lookup(q);
            got_rtree.sort_unstable();
            assert_eq!(got_grid, expect, "grid for {q}");
            assert_eq!(got_rtree, expect, "rtree for {q}");
        }
    }

    #[test]
    fn lookup_outside_domain_is_empty() {
        let (grid, rtree, _) = populated_indexes();
        let q = mi(&[(200, 210), (200, 210)]);
        assert!(grid.lookup(&q).is_empty());
        assert!(rtree.lookup(&q).is_empty());
    }

    #[test]
    fn query_clipped_to_domain() {
        let (grid, _, tiles) = populated_indexes();
        let q = mi(&[(-50, 5), (-50, 5)]);
        let mut got = grid.lookup(&q);
        got.sort_unstable();
        let mut expect = brute_force(&tiles, &q);
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn removal_works() {
        let (mut grid, mut rtree, tiles) = populated_indexes();
        assert!(grid.remove(0));
        assert!(!grid.remove(0));
        assert!(rtree.remove(0));
        assert!(!rtree.remove(0));
        let q = tiles[0].clone();
        assert!(!grid.lookup(&q).contains(&0));
        assert!(!rtree.lookup(&q).contains(&0));
        assert_eq!(grid.len(), 99);
        assert_eq!(rtree.len(), 99);
    }

    #[test]
    fn rtree_handles_irregular_boxes() {
        let mut rtree = RTreeIndex::new();
        let boxes = [
            mi(&[(0, 5), (0, 100)]),
            mi(&[(6, 100), (0, 10)]),
            mi(&[(50, 60), (50, 60)]),
            mi(&[(0, 1), (0, 1)]),
            mi(&[(90, 99), (90, 99)]),
        ];
        for (i, b) in boxes.iter().enumerate() {
            rtree.insert(b.clone(), i as TileId).unwrap();
        }
        let q = mi(&[(0, 10), (0, 10)]);
        let mut got = rtree.lookup(&q);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 3]);
    }

    #[test]
    fn rtree_grows_in_height_under_load() {
        let mut rtree = RTreeIndex::new();
        for i in 0..200i64 {
            rtree
                .insert(mi(&[(i * 10, i * 10 + 9), (0, 9)]), i as TileId)
                .unwrap();
        }
        assert_eq!(rtree.len(), 200);
        assert!(rtree.height() >= 2);
        // every tile individually findable
        for i in 0..200i64 {
            let q = mi(&[(i * 10 + 2, i * 10 + 3), (2, 3)]);
            assert_eq!(rtree.lookup(&q), vec![i as TileId]);
        }
    }

    #[test]
    fn rtree_rejects_mixed_dimensions() {
        let mut rtree = RTreeIndex::new();
        rtree.insert(mi(&[(0, 1), (0, 1)]), 0).unwrap();
        assert!(rtree.insert(mi(&[(0, 1)]), 1).is_err());
    }
}
