//! Property tests of the super-tile wire codecs: every codec must
//! roundtrip every payload class on every cell type, the decoder must
//! accept the legacy (pre-frame) RLE wire format, and mutated frames
//! must never panic or smuggle a wrong-length payload through.

use bytes::Bytes;
use heaven_array::codec::{self, baseline, sniff_frame};
use heaven_array::{decode_wire, encode_wire, rle_decompress, Codec, CodecPolicy};
use proptest::prelude::*;

/// Deterministic byte generator (xorshift64*), so large payloads don't
/// blow up proptest's case size.
fn rng_bytes(mut state: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let w = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// A payload of `cells` cells of `cell_size` bytes in one of three data
/// classes: constant, classified (blocky label runs), or random.
fn payload(class: u8, seed: u64, cells: usize, cell_size: usize) -> Vec<u8> {
    let len = cells * cell_size;
    match class {
        0 => vec![(seed % 251) as u8; len],
        1 => {
            // classified: runs of 1..=96 repeated labels
            let mut out = Vec::with_capacity(len);
            let mut s = seed | 1;
            while out.len() < len {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let run = 1 + (s % 96) as usize;
                let label = (s >> 32) as u8;
                out.extend(std::iter::repeat_n(label, run.min(len - out.len())));
            }
            out
        }
        _ => rng_bytes(seed | 1, len),
    }
}

fn cell_sizes() -> impl Strategy<Value = usize> {
    // the cell sizes of U8, I16, I32/F32 and F64
    (0usize..4).prop_map(|i| [1usize, 2, 4, 8][i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Each codec, forced, roundtrips every data class on every cell
    /// size — and the wire always decodes back to the exact payload.
    #[test]
    fn forced_codecs_roundtrip(
        class in 0u8..3,
        seed in any::<u64>(),
        cells in 0usize..600,
        cell_size in cell_sizes(),
    ) {
        let data = Bytes::from(payload(class, seed, cells, cell_size));
        for forced in [Codec::Raw, Codec::Rle, Codec::ShuffleRle] {
            let policy = CodecPolicy { forced: Some(forced), ..CodecPolicy::default() };
            let (wire, used) = encode_wire(&data, cell_size, &policy);
            let (back, decoded_as) = decode_wire(&wire, data.len() as u64)
                .expect("own wire must decode");
            prop_assert_eq!(&back[..], &data[..], "codec {:?} (as {:?})", forced, decoded_as);
            // the expansion guard may demote a forced codec to raw, but
            // decode must report exactly what encode chose
            prop_assert_eq!(used, decoded_as);
        }
    }

    /// The adaptive policy also roundtrips, and never expands the wire
    /// beyond the frame-wrap worst case.
    #[test]
    fn adaptive_roundtrips_and_never_expands(
        class in 0u8..3,
        seed in any::<u64>(),
        cells in 0usize..600,
        cell_size in cell_sizes(),
    ) {
        let data = Bytes::from(payload(class, seed, cells, cell_size));
        let (wire, _) = encode_wire(&data, cell_size, &CodecPolicy::default());
        prop_assert!(wire.len() <= data.len() + 24, "wire may exceed payload only by one header");
        let (back, _) = decode_wire(&wire, data.len() as u64).expect("adaptive wire must decode");
        prop_assert_eq!(&back[..], &data[..]);
    }

    /// Differential back-compat: wires produced by the legacy scalar RLE
    /// (the exact pre-frame on-tape format) decode through both the new
    /// low-level decoder and the full wire decoder.
    #[test]
    fn legacy_rle_wire_still_decodes(
        class in 0u8..2, // constant / classified: classes the old writer shrank
        seed in any::<u64>(),
        cells in 1usize..600,
        cell_size in cell_sizes(),
    ) {
        let data = payload(class, seed, cells, cell_size);
        let legacy = baseline::rle_compress(&data);
        let decoded = rle_decompress(&legacy);
        prop_assert_eq!(decoded.as_deref(), Some(&data[..]));
        // The system-level decoder only sees legacy streams whose length
        // differs from the catalogued payload length (equality means an
        // untagged raw pass-through instead).
        if legacy.len() != data.len() && sniff_frame(&legacy).is_none() {
            let (back, used) = decode_wire(&Bytes::from(legacy), data.len() as u64)
                .expect("legacy wire must decode");
            prop_assert_eq!(used, Codec::Rle);
            prop_assert_eq!(&back[..], &data[..]);
        }
    }

    /// The new and old RLE encoders emit byte-identical wires, so mixed
    /// archives need no migration.
    #[test]
    fn new_rle_encoder_matches_legacy_bytes(
        class in 0u8..3,
        seed in any::<u64>(),
        cells in 0usize..600,
    ) {
        let data = payload(class, seed, cells, 1);
        prop_assert_eq!(codec::rle_compress(&data), baseline::rle_compress(&data));
    }

    /// Mutating a shuffle frame — truncation, header edits, body bit
    /// flips — must never panic, and any `Ok` must still honour the
    /// declared payload length (wrong *bytes* are the checksum's job;
    /// wrong *shape* would be the codec's fault).
    #[test]
    fn mutated_shuffle_frames_never_panic_or_change_length(
        seed in any::<u64>(),
        cells in 1usize..400,
        cell_size in cell_sizes(),
        cut in 1usize..32,
        flip_at in any::<u64>(),
    ) {
        let data = Bytes::from(payload(1, seed, cells, cell_size));
        let policy = CodecPolicy { forced: Some(Codec::ShuffleRle), ..CodecPolicy::default() };
        let (wire, _) = encode_wire(&data, cell_size, &policy);
        let expected = data.len() as u64;

        // truncated wire
        let t = wire.len().saturating_sub(cut.min(wire.len().saturating_sub(1)));
        check_no_panic(&wire[..t], expected);
        // one flipped bit anywhere
        let mut flipped = wire.to_vec();
        let i = (flip_at % flipped.len() as u64) as usize;
        flipped[i] ^= 1 << (seed % 8);
        check_no_panic(&flipped, expected);
        // a lying orig_len (guaranteed rejection when framed)
        if sniff_frame(&wire).is_some() {
            let mut lying = wire.to_vec();
            lying[8..16].copy_from_slice(&(expected + 1).to_le_bytes());
            if sniff_frame(&lying).is_some() {
                prop_assert!(decode_wire(&Bytes::from(lying), expected).is_err());
            }
        }
    }
}

/// Decode must not panic, and a successful decode must match the
/// catalogued length exactly.
fn check_no_panic(mutated: &[u8], expected: u64) {
    if let Ok((b, _)) = decode_wire(&Bytes::copy_from_slice(mutated), expected) {
        assert_eq!(b.len() as u64, expected);
    }
}
