//! Property-based tests of the array substrate's invariants.

use heaven_array::{
    subtract_box, CellType, Frame, Interval, LinearOrder, MDArray, Minterval, Point, Tile, Tiling,
};
use proptest::prelude::*;

/// Strategy: a d-dimensional minterval with bounded extents.
fn minterval(dim: usize, max_extent: i64) -> impl Strategy<Value = Minterval> {
    prop::collection::vec((-50i64..50, 1i64..=max_extent), dim).prop_map(|axes| {
        Minterval::new(
            &axes
                .into_iter()
                .map(|(lo, ext)| (lo, lo + ext - 1))
                .collect::<Vec<_>>(),
        )
        .expect("lo <= hi by construction")
    })
}

proptest! {
    #[test]
    fn offset_point_roundtrip(m in minterval(3, 8), off_frac in 0.0f64..1.0) {
        let off = (m.cell_count() as f64 * off_frac) as u64 % m.cell_count();
        let p = m.point_at(off);
        prop_assert!(m.contains_point(&p));
        prop_assert_eq!(m.offset_of(&p).unwrap() as u64, off);
    }

    #[test]
    fn intersection_is_commutative_and_contained(
        a in minterval(2, 20),
        b in minterval(2, 20),
    ) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(&ab, &ba);
        if let Some(i) = ab {
            prop_assert!(a.contains(&i));
            prop_assert!(b.contains(&i));
        }
    }

    #[test]
    fn hull_contains_both(a in minterval(3, 15), b in minterval(3, 15)) {
        let h = a.hull(&b).unwrap();
        prop_assert!(h.contains(&a));
        prop_assert!(h.contains(&b));
        // hull is minimal on each axis
        for i in 0..3 {
            prop_assert_eq!(h.axis(i).lo, a.axis(i).lo.min(b.axis(i).lo));
            prop_assert_eq!(h.axis(i).hi, a.axis(i).hi.max(b.axis(i).hi));
        }
    }

    #[test]
    fn subtract_box_partitions_correctly(
        a in minterval(2, 16),
        b in minterval(2, 16),
    ) {
        let parts = subtract_box(&a, &b);
        // parts are disjoint, inside a, outside b
        for (i, p) in parts.iter().enumerate() {
            prop_assert!(a.contains(p));
            prop_assert!(!p.intersects(&b));
            for q in &parts[i + 1..] {
                prop_assert!(!p.intersects(q));
            }
        }
        // cell counts add up
        let part_cells: u64 = parts.iter().map(|p| p.cell_count()).sum();
        prop_assert_eq!(part_cells, a.cell_count() - a.overlap_cells(&b));
    }

    #[test]
    fn frame_union_difference_invariants(
        a in minterval(2, 16),
        b in minterval(2, 16),
        c in minterval(2, 16),
    ) {
        let fa = Frame::from_box(a.clone());
        let fb = Frame::from_box(b.clone());
        let u = fa.union(&fb).unwrap();
        prop_assert!(u.check_disjoint());
        prop_assert_eq!(
            u.cell_count(),
            a.cell_count() + b.cell_count() - a.overlap_cells(&b)
        );
        let d = u.difference(&Frame::from_box(c.clone())).unwrap();
        prop_assert!(d.check_disjoint());
        // difference removed exactly the overlap
        prop_assert_eq!(d.cell_count(), u.cell_count() - u.overlap_cells(&c));
    }

    #[test]
    fn tiling_partitions_domain(
        m in minterval(2, 40),
        e0 in 1u64..12,
        e1 in 1u64..12,
    ) {
        let tiling = Tiling::Regular { tile_shape: vec![e0, e1] };
        let tiles = tiling.tile_domains(&m, CellType::U8).unwrap();
        let total: u64 = tiles.iter().map(|t| t.cell_count()).sum();
        prop_assert_eq!(total, m.cell_count());
        for (i, t) in tiles.iter().enumerate() {
            prop_assert!(m.contains(t));
            for u in &tiles[i + 1..] {
                prop_assert!(!t.intersects(u));
            }
        }
    }

    #[test]
    fn linearization_keys_unique(
        shape in prop::collection::vec(1u64..6, 2..4),
        order_idx in 0usize..4,
    ) {
        let order = [
            LinearOrder::RowMajor,
            LinearOrder::ColMajor,
            LinearOrder::ZOrder,
            LinearOrder::Hilbert,
        ][order_idx];
        let grid = Minterval::with_shape(&shape).unwrap();
        let mut keys: Vec<u128> = grid
            .iter_points()
            .map(|p| {
                let coords: Vec<u64> = p.0.iter().map(|&c| c as u64).collect();
                order.key(&coords, &shape)
            })
            .collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), n);
    }

    #[test]
    fn tile_codec_roundtrip(
        m in minterval(2, 10),
        id in 0u64..1000,
        oid in 0u64..100,
        seed in 0u64..1000,
    ) {
        let data = MDArray::generate(m, CellType::I32, |p: &Point| {
            (seed as i64 + p.0.iter().sum::<i64>()) as f64
        });
        let tile = Tile::new(id, oid, data);
        let enc = tile.encode();
        let (dec, used) = Tile::decode(&enc).unwrap();
        prop_assert_eq!(used, enc.len());
        prop_assert_eq!(dec, tile);
    }

    #[test]
    fn extract_patch_roundtrip(
        outer in minterval(2, 20),
        frac in 0.1f64..1.0,
    ) {
        let arr = MDArray::generate(outer.clone(), CellType::F32, |p: &Point| {
            (p.coord(0) * 31 + p.coord(1)) as f64
        });
        // an inner box scaled by frac
        let inner = Minterval::from_intervals(
            outer
                .axes()
                .iter()
                .map(|a| {
                    let ext = ((a.extent() as f64 * frac).ceil() as i64).max(1);
                    Interval::new(a.lo, (a.lo + ext - 1).min(a.hi)).unwrap()
                })
                .collect(),
        );
        let piece = arr.extract(&inner).unwrap();
        let mut rebuilt = MDArray::zeros(outer, CellType::F32);
        rebuilt.patch(&piece).unwrap();
        for p in inner.iter_points() {
            prop_assert_eq!(rebuilt.get_f64(&p).unwrap(), arr.get_f64(&p).unwrap());
        }
    }
}
