//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The build environment cannot reach a crates registry, so the workspace
//! vendors the thin slice of the rand API it uses: `StdRng` +
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` over
//! integer/float ranges, and `seq::SliceRandom::{shuffle, choose}`.
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic
//! and of ample quality for simulation workloads (it is NOT
//! cryptographically secure, and neither is this shim's API contract).

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a uniform value from a range; implemented for `Range` and
/// `RangeInclusive` over the primitive integer and float types.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn gen_standard(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn gen_standard(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn gen_standard(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn gen_standard(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn gen_standard(rng: &mut dyn RngCore) -> f32 {
        ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_standard(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// xoshiro256** — the algorithm rand 0.8's `SmallRng` family uses.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    pub use super::StdRng;
}

/// A process-local generator seeded from the system time; convenience only.
pub fn thread_rng() -> StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    StdRng::seed_from_u64(nanos)
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and sampling (Fisher–Yates).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
