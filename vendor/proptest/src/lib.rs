//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API this workspace uses: the
//! `proptest!` macro with an optional `#![proptest_config(..)]` header,
//! numeric range strategies, tuple strategies, `any::<T>()`,
//! `prop::collection::vec`, `Just`, `.prop_map`, `prop_oneof!`, and the
//! `prop_assert*` macros. Each test runs a fixed number of random cases
//! from a seed derived from the test name, so failures are reproducible
//! across runs. There is **no shrinking**: a failing case reports its
//! inputs via the panic message instead.

pub mod test_runner {
    /// A deterministic xoshiro256** generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the test name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Error type carried by `prop_assert!` failures inside a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of random values. Unlike real proptest there is no
    /// value tree / shrinking machinery; a strategy just samples.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased strategy used by `prop_oneof!`.
    #[derive(Clone)]
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.new_value(rng)
        }
    }

    /// Uniform choice between boxed alternatives.
    pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let i = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[i].new_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of `prop_map`.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + rng.unit_f64() as $t * (hi - lo)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $S:ident),+);)+) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.new_value(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (0 S0);
        (0 S0, 1 S1);
        (0 S0, 1 S1, 2 S2);
        (0 S0, 1 S1, 2 S2, 3 S3);
        (0 S0, 1 S1, 2 S2, 3 S3, 4 S4);
        (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5);
    }

    /// Types with a canonical "arbitrary" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy returned by `any::<T>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for `vec`; converted from plain usize ranges.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace mirror so `prop::collection::vec` works via the prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut rng);
                )+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        cfg.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}: {}",
                a,
                b,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u64),
        Del(u64),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![(0u64..10).prop_map(Op::Put), (0u64..10).prop_map(Op::Del),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_in_bounds(a in 3u64..9, b in -4i64..=4, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-4..=4).contains(&b));
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
        }

        fn vec_sizes_respected(v in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!(*x < 5);
            }
        }

        fn oneof_and_tuples(ops in prop::collection::vec((op(), any::<u8>()), 1..20)) {
            for (o, _) in &ops {
                match o {
                    Op::Put(k) | Op::Del(k) => prop_assert!(*k < 10),
                }
            }
        }

        fn just_yields_value(x in Just(42u32)) {
            prop_assert_eq!(x, 42);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
