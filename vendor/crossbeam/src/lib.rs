//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, wrapping `std::sync::mpsc`
//! with the crossbeam calling convention. `bounded(0)` (a rendezvous
//! channel) and `bounded(n)` map directly onto `sync_channel`.

pub mod channel {
    use std::sync::mpsc;

    pub use mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    /// Create an unbounded channel (capacity limited only by memory).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        // mpsc's plain channel is unbounded but has a different sender
        // type; a very large sync_channel keeps one Sender type here.
        bounded(1 << 20)
    }
}
