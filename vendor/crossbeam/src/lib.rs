//! Offline stand-in for the `crossbeam` crate.
//!
//! Three modules are provided:
//!
//! * [`channel`] — wraps `std::sync::mpsc` with the crossbeam calling
//!   convention (`bounded(0)` is a rendezvous channel, `bounded(n)` maps
//!   onto `sync_channel`);
//! * [`queue`] — an MPMC work queue ([`queue::SegQueue`]) usable from any
//!   number of producers and consumers through `&self`;
//! * [`utils`] — [`utils::CachePadded`], aligning hot shared state to a
//!   cache-line boundary to stop false sharing between lock stripes.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC queue with the `crossbeam` `SegQueue` API.
    ///
    /// The real crate uses a lock-free segmented ring; offline, a mutexed
    /// deque provides the same semantics (FIFO, usable through `&self`
    /// from any thread) at lower peak throughput — enough for the staging
    /// coordinator's pending-request queue, which is drained in batches.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> SegQueue<T> {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Push an element to the back of the queue.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        /// Pop the front element, or `None` when empty.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// Number of queued elements (a racy snapshot under concurrency).
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is empty (a racy snapshot under concurrency).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn mpmc_loses_nothing() {
            let q = Arc::new(SegQueue::new());
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..100 {
                            q.push(p * 100 + i);
                        }
                    })
                })
                .collect();
            for t in producers {
                t.join().unwrap();
            }
            let mut seen = std::collections::HashSet::new();
            while let Some(v) = q.pop() {
                assert!(seen.insert(v));
            }
            assert_eq!(seen.len(), 400);
        }
    }
}

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 64 bytes so adjacent values (e.g. lock
    /// stripes in an array) never share a cache line.
    #[derive(Debug, Default)]
    #[repr(align(64))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap a value.
        pub fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Unwrap.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> CachePadded<T> {
            CachePadded::new(value)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn aligned_to_cache_line() {
            assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
            let v = CachePadded::new(41u64);
            assert_eq!(*v + 1, 42);
        }
    }
}

pub mod channel {
    use std::sync::mpsc;

    pub use mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    /// Create an unbounded channel (capacity limited only by memory).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        // mpsc's plain channel is unbounded but has a different sender
        // type; a very large sync_channel keeps one Sender type here.
        bounded(1 << 20)
    }
}
