//! Offline stand-in for the `criterion` crate.
//!
//! Benchmarks keep their `criterion_group!`/`criterion_main!` structure,
//! but this harness runs each benchmark as a short smoke pass (a warm-up
//! call plus a small timed loop) and prints a rough ns/iter figure. The
//! goal is that `cargo test`/`cargo bench` finish quickly offline while
//! still executing every benchmark body for correctness.

use std::time::Instant;

pub use std::hint::black_box;

/// Number of timed iterations per benchmark in the smoke harness.
const SMOKE_ITERS: u32 = 20;

/// The benchmark driver handed to each registered function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed_ns: 0,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed_ns / b.iters as u128
        } else {
            0
        };
        println!(
            "bench {name:<40} ~{per_iter} ns/iter (smoke run, {} iters)",
            b.iters
        );
        self
    }
}

/// Runs the measured closure; timing is best-effort wall clock.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also catches panics early
        let start = Instant::now();
        for _ in 0..SMOKE_ITERS {
            black_box(f());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += SMOKE_ITERS as u64;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($name:ident; $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
