//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to the crates.io registry,
//! so the workspace vendors API-compatible shims for the handful of
//! external symbols it actually uses. This one provides real mutual
//! exclusion (backed by `std::sync` primitives) with the poison-free
//! `parking_lot` calling convention (`lock()` returns the guard
//! directly), plus **contention instrumentation**: every acquisition
//! first takes the uncontended `try_lock` fast path; only when that
//! fails does it fall into a timed blocking acquisition, counting the
//! contended acquire and the host nanoseconds spent waiting. The
//! process-wide totals are exposed through [`contention_stats`] so the
//! storage hierarchy can surface lock pressure as metrics
//! (`cache.shard_lock_wait_s` et al.) without any per-lock bookkeeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{self, TryLockError};
use std::time::{Duration, Instant};

pub use sync::MutexGuard;
pub use sync::{RwLockReadGuard, RwLockWriteGuard};

/// Process-wide count of contended lock acquisitions (mutex + rwlock).
static CONTENDED_ACQUIRES: AtomicU64 = AtomicU64::new(0);
/// Process-wide host nanoseconds spent blocked on contended acquisitions.
static CONTENDED_WAIT_NANOS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide lock contention totals:
/// `(contended_acquires, total_wait_seconds)`. Wait time is *host* time
/// (threads really block), not simulated time.
pub fn contention_stats() -> (u64, f64) {
    (
        CONTENDED_ACQUIRES.load(Ordering::Relaxed),
        CONTENDED_WAIT_NANOS.load(Ordering::Relaxed) as f64 / 1e9,
    )
}

/// Record one contended acquisition of `nanos` host nanoseconds and
/// return the wait in seconds. Public so wrappers that implement their
/// own waiting (e.g. sharded caches timing a specific stripe) can fold
/// into the same totals.
pub fn note_contended_wait(nanos: u64) -> f64 {
    CONTENDED_ACQUIRES.fetch_add(1, Ordering::Relaxed);
    CONTENDED_WAIT_NANOS.fetch_add(nanos, Ordering::Relaxed);
    nanos as f64 / 1e9
}

/// A mutex with the `parking_lot` API surface, backed by
/// `std::sync::Mutex`. Poisoning is transparently cleared, matching
/// `parking_lot` semantics; contended acquisitions are counted.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock. Uncontended acquisitions take a `try_lock` fast
    /// path; contended ones block and are recorded in the process-wide
    /// contention totals.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(g) = self.try_lock() {
            return g;
        }
        let t0 = Instant::now();
        let g = self.0.lock().unwrap_or_else(|e| e.into_inner());
        note_contended_wait(t0.elapsed().as_nanos() as u64);
        g
    }

    /// Acquire the lock like [`Mutex::lock`], additionally returning the
    /// host seconds this call spent blocked (0.0 when uncontended).
    pub fn lock_timed(&self) -> (MutexGuard<'_, T>, f64) {
        if let Some(g) = self.try_lock() {
            return (g, 0.0);
        }
        let t0 = Instant::now();
        let g = self.0.lock().unwrap_or_else(|e| e.into_inner());
        let wait = note_contended_wait(t0.elapsed().as_nanos() as u64);
        (g, wait)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable compatible with this shim's [`Mutex`]. Because
/// our `MutexGuard` *is* `std::sync::MutexGuard`, waits use the std
/// consuming-guard convention: `wait` takes the guard and returns it
/// re-acquired (rather than `parking_lot`'s `&mut guard` signature).
/// Poisoning is transparently cleared, matching the rest of the shim.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically release the guard and sleep until notified; returns
    /// the re-acquired guard. Spurious wakeups are possible — callers
    /// loop on their predicate.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Like [`Condvar::wait`] with a timeout; the boolean is `true` when
    /// the wait timed out rather than being notified.
    pub fn wait_for<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (g, res) = self
            .0
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        (g, res.timed_out())
    }
}

/// A reader-writer lock with the `parking_lot` API surface; contended
/// acquisitions are counted like [`Mutex`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if let Some(g) = self.try_read() {
            return g;
        }
        let t0 = Instant::now();
        let g = self.0.read().unwrap_or_else(|e| e.into_inner());
        note_contended_wait(t0.elapsed().as_nanos() as u64);
        g
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if let Some(g) = self.try_write() {
            return g;
        }
        let t0 = Instant::now();
        let g = self.0.write().unwrap_or_else(|e| e.into_inner());
        note_contended_wait(t0.elapsed().as_nanos() as u64);
        g
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_share() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn contention_is_counted() {
        let m = Arc::new(Mutex::new(0u64));
        let (acq0, _) = contention_stats();
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let t = std::thread::spawn(move || {
            *m2.lock() += 1; // blocks until the main thread releases
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(g);
        t.join().unwrap();
        let (acq1, wait_s) = contention_stats();
        assert!(acq1 > acq0, "contended acquire must be counted");
        assert!(wait_s > 0.0);
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn lock_timed_uncontended_is_zero() {
        let m = Mutex::new(());
        let (_g, wait) = m.lock_timed();
        assert_eq!(wait, 0.0);
    }

    #[test]
    fn condvar_notifies_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut g = lock.lock();
            while !*g {
                g = cv.wait(g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let g = lock.lock();
        let t0 = Instant::now();
        let (_g, timed_out) = cv.wait_for(g, Duration::from_millis(5));
        assert!(timed_out);
        assert!(t0.elapsed() >= Duration::from_millis(4));
    }
}
