//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to the crates.io registry,
//! so the workspace vendors API-compatible shims for the handful of
//! external symbols it actually uses. This one wraps `std::sync` locks and
//! exposes the poison-free `parking_lot` calling convention (`lock()`
//! returns the guard directly).

use std::sync::{self, TryLockError};

pub use sync::MutexGuard;
pub use sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutex with the `parking_lot` API surface, backed by `std::sync::Mutex`.
/// Poisoning is transparently cleared, matching `parking_lot` semantics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with the `parking_lot` API surface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
