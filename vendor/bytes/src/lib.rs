//! Offline stand-in for the `bytes` crate.
//!
//! The workspace declares `bytes` but only needs a cheap, owned byte
//! container; this shim provides `Bytes`/`BytesMut` over `Arc<Vec<u8>>` /
//! `Vec<u8>` with the small slice-like API surface the codebase may use.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes(Arc::new(data.to_vec()))
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::new(data.to_vec()))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

/// A mutable, growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}
