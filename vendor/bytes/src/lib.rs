//! Offline stand-in for the `bytes` crate.
//!
//! Unlike the original cheap shim, this is a real refcounted slice type:
//! [`Bytes`] is a view `(start, end)` into an `Arc<Vec<u8>>`, so `clone`,
//! [`Bytes::slice`], [`Bytes::split_to`] and [`Bytes::split_off`] are all
//! O(1) and never touch the payload. [`BytesMut::freeze`] moves the
//! accumulated `Vec` behind an `Arc` without reallocating or copying. This
//! is the backbone of HEAVEN's zero-copy tile materialization: a staged
//! super-tile buffer is allocated once and every member tile, cache entry
//! and query result borrows sub-ranges of it.

use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer slice.
///
/// Equality and hashing are content-based (two `Bytes` over different
/// allocations with the same contents compare equal).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    #[inline]
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a static slice into a buffer.
    ///
    /// The real crate borrows static data without copying; this shim copies
    /// once, which is equivalent for everything downstream.
    #[inline]
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Copy an arbitrary slice into a fresh buffer.
    #[inline]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of this view in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copy the viewed bytes into an owned `Vec`.
    #[inline]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// The viewed bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// O(1) sub-slice sharing the same allocation.
    ///
    /// `range` is relative to this view. Panics when out of bounds, like
    /// slice indexing.
    #[inline]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "Bytes::slice out of range: {lo}..{hi} of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    /// O(1); both halves share the allocation.
    #[inline]
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Split off and return the bytes from `at` on; `self` keeps the
    /// prefix. O(1); both halves share the allocation.
    #[inline]
    pub fn split_off(&mut self, at: usize) -> Bytes {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    /// Shorten the view to `len` bytes (no-op if already shorter).
    #[inline]
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }

    /// Number of `Bytes` handles sharing this allocation (diagnostics).
    #[inline]
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// O(1): moves the `Vec` behind an `Arc` without copying the payload.
    #[inline]
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    #[inline]
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    #[inline]
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    #[inline]
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    #[inline]
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    #[inline]
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    #[inline]
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    #[inline]
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A mutable, growable byte buffer that freezes into [`Bytes`] without
/// copying.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    #[inline]
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    #[inline]
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.0.capacity()
    }

    #[inline]
    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }

    #[inline]
    pub fn clear(&mut self) {
        self.0.clear();
    }

    #[inline]
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Alias of [`Self::extend_from_slice`] matching the real crate's
    /// `BufMut` vocabulary.
    #[inline]
    pub fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }

    #[inline]
    pub fn put_u8(&mut self, b: u8) {
        self.0.push(b);
    }

    /// Resize to `len` bytes, filling any new tail with `value`. Growing
    /// by a constant byte lowers to `memset`, which is what the RLE
    /// decoder's run fills rely on.
    #[inline]
    pub fn resize(&mut self, len: usize, value: u8) {
        self.0.resize(len, value);
    }

    /// Shorten to `len` bytes (no-op if already shorter).
    #[inline]
    pub fn truncate(&mut self, len: usize) {
        self.0.truncate(len);
    }

    /// The reserved-but-uninitialized tail, for writers that fill bytes
    /// in place and then commit them with [`Self::set_len`] (mirrors the
    /// real crate).
    #[inline]
    pub fn spare_capacity_mut(&mut self) -> &mut [std::mem::MaybeUninit<u8>] {
        self.0.spare_capacity_mut()
    }

    /// Set the initialized length directly.
    ///
    /// # Safety
    ///
    /// `len` must not exceed the capacity and every byte below `len`
    /// must have been initialized.
    #[inline]
    pub unsafe fn set_len(&mut self, len: usize) {
        debug_assert!(len <= self.0.capacity());
        unsafe { self.0.set_len(len) };
    }

    /// Freeze into an immutable shared buffer. O(1): the heap allocation
    /// is moved behind an `Arc`, not reallocated.
    #[inline]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::ops::DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl From<Vec<u8>> for BytesMut {
    #[inline]
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut(v)
    }
}

impl From<BytesMut> for Vec<u8> {
    /// O(1): hands back the underlying allocation (mirrors the real crate).
    #[inline]
    fn from(m: BytesMut) -> Vec<u8> {
        m.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_allocation() {
        let b = Bytes::from((0u8..100).collect::<Vec<u8>>());
        let s = b.slice(10..20);
        assert_eq!(s.as_slice(), &(10u8..20).collect::<Vec<u8>>()[..]);
        assert_eq!(s.ref_count(), 2);
        let mut rest = b;
        let head = rest.split_to(50);
        assert_eq!(head.len(), 50);
        assert_eq!(rest.len(), 50);
        assert_eq!(rest[0], 50);
        let tail = rest.clone().split_off(25);
        assert_eq!(tail[0], 75);
    }

    #[test]
    fn freeze_is_zero_copy() {
        let mut m = BytesMut::with_capacity(64);
        m.extend_from_slice(b"hello");
        let ptr = m.as_ref().as_ptr();
        let b = m.freeze();
        assert_eq!(b.as_slice(), b"hello");
        assert_eq!(b.as_slice().as_ptr(), ptr, "freeze must not reallocate");
    }

    #[test]
    fn equality_is_content_based() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]).slice(1..5);
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 2, 3, 4]);
        assert_eq!(vec![1, 2, 3, 4], a);
        assert_eq!(a, &[1u8, 2, 3, 4][..]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..5);
    }

    #[test]
    fn resize_fills_and_truncates() {
        let mut m = BytesMut::new();
        m.extend_from_slice(&[1, 2]);
        m.resize(6, 9);
        assert_eq!(&m[..], &[1, 2, 9, 9, 9, 9]);
        m.resize(3, 0);
        assert_eq!(&m[..], &[1, 2, 9]);
        m.truncate(1);
        assert_eq!(&m[..], &[1]);
    }

    #[test]
    fn truncate_shortens_view() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        b.truncate(2);
        assert_eq!(b, vec![1, 2]);
        b.truncate(10); // no-op
        assert_eq!(b.len(), 2);
    }
}
