//! Climate archive: the DKRZ scenario from the paper's introduction.
//!
//! Monthly 3-D temperature fields are produced by a simulation, archived
//! to tape with eSTAR clustering tuned for *time-series access*, and then
//! analysed: "average temperature at one location across all months" — a
//! query that cuts through every file in a classical archive (Fig. 1.1,
//! right) but touches a single super-tile run under HEAVEN.
//!
//! ```sh
//! cargo run --release --example climate_archive
//! # with a JSONL trace for heaven-prof:
//! cargo run --release --example climate_archive -- --trace /tmp/climate.jsonl
//! ```

use heaven::array::{CellType, Minterval, Tiling};
use heaven::arraydb::run;
use heaven::core::{AccessPattern, ClusteringStrategy, ExportMode, HeavenConfig};
use heaven::obs::TraceConfig;
use heaven::tape::DeviceProfile;
use heaven::workload::climate_field_tile;

/// `--trace <path>`: write a JSONL trace for offline profiling.
/// `--trace-sample <n>`: keep every n-th query trace (head sampling);
/// `--trace-slow <secs>`: keep sampled-out queries at least this slow.
fn trace_config() -> TraceConfig {
    let mut cfg = TraceConfig::off();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => {
                if let Some(path) = args.next() {
                    cfg.sink = TraceConfig::jsonl(path).sink;
                }
            }
            "--trace-sample" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.sample_1_in_n = n;
                }
            }
            "--trace-slow" => {
                if let Some(s) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.keep_slow_s = s;
                }
            }
            _ => {}
        }
    }
    cfg
}

fn main() {
    // Time-series-friendly configuration: eSTAR groups runs along the
    // time axis (axis 0), so month-spanning queries stay in one super-tile.
    let mut heaven = heaven::open(
        DeviceProfile::ibm3590(),
        2,
        HeavenConfig {
            supertile_bytes: Some(2 << 20),
            clustering: ClusteringStrategy::EStar(AccessPattern::Directional { axis: 0 }),
            trace: trace_config(),
            ..HeavenConfig::default()
        },
    );
    heaven
        .arraydb_mut()
        .create_collection("era_monthly", CellType::F32, 3)
        .expect("collection");

    // 24 months x 60 lat x 120 lon, one object per simulation run.
    let domain = Minterval::new(&[(0, 23), (0, 59), (0, 119)]).unwrap();
    let mut oids = Vec::new();
    for run_id in 0..3u64 {
        // Stream tiles straight from the "simulation" into the DBMS —
        // the full field never exists in memory at once (HPC data flow).
        let oid = heaven
            .arraydb_mut()
            .insert_object_streamed(
                "era_monthly",
                &domain,
                Tiling::Regular {
                    tile_shape: vec![6, 30, 30], // time-chunked tiles
                },
                |tile_domain| climate_field_tile(&domain, tile_domain, run_id),
            )
            .expect("insert");
        oids.push(oid);
    }
    println!("inserted {} simulation runs of {}", oids.len(), domain);

    // Archive everything (the HPC machine needs its disks back).
    for &oid in &oids {
        let rep = heaven.export_object(oid, ExportMode::Tct).expect("export");
        println!(
            "archived run {oid}: {} super-tiles, {:.1} s simulated",
            rep.supertiles, rep.pipelined_s
        );
    }
    heaven.clear_caches();

    // Analysis 1: seasonal cycle at one location, across all 24 months —
    // the paper's "Schnitt durch mehrere Dateien" example.
    let rs =
        run(&mut heaven, "select t[*:*, 30, 60] from era_monthly as t").expect("time series query");
    for (i, r) in rs.iter().enumerate() {
        let series = r.value.as_array().expect("1-D series");
        let jan = series.get_f64(&heaven::array::Point::new(vec![0])).unwrap();
        let jul = series.get_f64(&heaven::array::Point::new(vec![6])).unwrap();
        println!(
            "run {i}: equator point Jan {:.1} K, Jul {:.1} K (seasonal swing {:+.1})",
            jan,
            jul,
            jul - jan
        );
    }

    // Analysis 2: mean temperature of a tropical band, per run.
    let rs = run(
        &mut heaven,
        "select avg_cells(t[0:23, 25:35, 0:119]) from era_monthly as t",
    )
    .expect("band average");
    for (i, r) in rs.iter().enumerate() {
        println!(
            "run {i}: tropical-band mean {:.2} K",
            r.value.as_scalar().unwrap()
        );
    }

    let stats = heaven.stats();
    println!(
        "\nsuper-tiles fetched from tape: {} ({} bytes); tile-cache hits: {}",
        stats.st_tape_fetches,
        stats.st_tape_bytes,
        heaven.tile_cache_stats().hits
    );
    println!("total simulated time: {:.1} s", heaven.clock().now_s());
    heaven.trace().flush();
}
