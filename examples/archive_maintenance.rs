//! Archive maintenance (paper §3.6): updating archived data in place,
//! deleting objects, re-importing an object to disk, and reclaiming the
//! dead space both operations leave on append-only tape media.
//!
//! ```sh
//! cargo run --release --example archive_maintenance
//! ```

use heaven::array::{CellType, MDArray, Minterval, Point, Tiling};
use heaven::core::{ExportMode, HeavenConfig};
use heaven::tape::DeviceProfile;

fn main() {
    let mut heaven = heaven::open(
        DeviceProfile::ibm3590(),
        1,
        HeavenConfig {
            supertile_bytes: Some(256 << 10),
            ..HeavenConfig::default()
        },
    );
    heaven
        .arraydb_mut()
        .create_collection("fields", CellType::I32, 2)
        .expect("collection");

    let domain = Minterval::new(&[(0, 99), (0, 99)]).unwrap();
    let mut oids = Vec::new();
    for k in 0..3i64 {
        let arr = MDArray::generate(domain.clone(), CellType::I32, |p| {
            (k * 10_000 + p.coord(0) * 100 + p.coord(1)) as f64
        });
        let oid = heaven
            .arraydb_mut()
            .insert_object(
                "fields",
                &arr,
                Tiling::Regular {
                    tile_shape: vec![25, 25],
                },
            )
            .expect("insert");
        heaven.export_object(oid, ExportMode::Tct).expect("export");
        oids.push(oid);
    }
    let medium = heaven
        .catalog()
        .address(heaven.catalog().object_supertiles(oids[0])[0])
        .expect("address")
        .medium;
    println!("archived {} objects on medium {medium}", oids.len());

    // 1. In-place update: a corrected calibration patch over object 0.
    let patch = MDArray::generate(
        Minterval::new(&[(40, 59), (40, 59)]).unwrap(),
        CellType::I32,
        |_| -7.0,
    );
    heaven.update_region(oids[0], &patch).expect("update");
    heaven.clear_caches();
    let check = heaven
        .fetch_region_hierarchical(oids[0], &Minterval::new(&[(39, 41), (39, 41)]).unwrap())
        .expect("read back");
    println!(
        "after update: cell (40,40) = {} (patched), cell (39,39) = {} (original)",
        check.get_f64(&Point::new(vec![40, 40])).unwrap(),
        check.get_f64(&Point::new(vec![39, 39])).unwrap(),
    );
    println!(
        "dead space on medium {medium}: {} bytes ({:.0}%)",
        heaven.dead_bytes_on(medium),
        heaven.dead_fraction(medium) * 100.0
    );

    // 2. Delete an entire object: more dead space.
    heaven.delete_object(oids[1]).expect("delete");
    println!(
        "after delete: dead fraction {:.0}%",
        heaven.dead_fraction(medium) * 100.0
    );

    // 3. Reclaim the medium once the dead fraction crosses 20 %.
    let rewritten = heaven.reclaim_medium(medium, 0.20).expect("reclaim");
    println!(
        "compaction rewrote {rewritten} live super-tiles; dead fraction now {:.0}%",
        heaven.dead_fraction(medium) * 100.0
    );

    // 4. Re-import the remaining archived object for intensive local work.
    heaven.reimport_object(oids[2]).expect("reimport");
    let tape_before = heaven.tape_stats().bytes_read;
    let sub = heaven
        .fetch_region_hierarchical(oids[2], &domain)
        .expect("disk read");
    assert_eq!(heaven.tape_stats().bytes_read, tape_before);
    println!(
        "re-imported object {}: {} cells readable with zero tape traffic",
        oids[2],
        sub.domain().cell_count()
    );

    println!("\ntotal simulated time {:.1} s", heaven.clock().now_s());
}
