//! Multi-session query execution: N worker threads querying one archive
//! concurrently through [`heaven::core::ConcurrentHeaven`].
//!
//! ```sh
//! cargo run --release --example concurrent_sessions -- --workers 8
//! ```
//!
//! Builds a small climate archive (4 objects, one tape medium each),
//! converts the system into its `Send + Sync` concurrent form, and deals
//! a mixed query stream across `--workers` sessions. Each session charges
//! its overlappable work (disk-cache reads) to a private simulated clock
//! lane; cold super-tile fetches funnel through the cross-session batcher
//! so sessions wanting the same medium share one mount, and duplicate
//! requests coalesce into a single tape read.

use std::time::Duration;

use heaven::array::{CellType, MDArray, Minterval, Tiling};
use heaven::core::{ExportMode, HeavenConfig, Session};
use heaven::tape::DeviceProfile;
use heaven::workload::{selectivity_queries, session_streams};

fn main() {
    let mut workers = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--workers" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                workers = n;
            }
        }
    }
    let workers = workers.max(1);

    // 1. Build and archive single-threaded: 4 objects, one medium each.
    let mut heaven = heaven::open(
        DeviceProfile::ibm3590(),
        2,
        HeavenConfig {
            supertile_bytes: Some(64 << 10),
            medium_per_object: true,
            cache_shards: 16,
            mem_cache_bytes: 4 << 20,
            ..HeavenConfig::default()
        },
    );
    heaven
        .arraydb_mut()
        .create_collection("climate", CellType::F32, 2)
        .expect("create collection");
    let domain = Minterval::new(&[(0, 255), (0, 255)]).unwrap();
    let mut oids = Vec::new();
    for o in 0..4i64 {
        let field = MDArray::generate(domain.clone(), CellType::F32, |p| {
            (o * 100) as f64 + (p.coord(0) as f64 / 25.0).sin() * 8.0 + p.coord(1) as f64 * 0.02
        });
        let oid = heaven
            .arraydb_mut()
            .insert_object(
                "climate",
                &field,
                Tiling::Regular {
                    tile_shape: vec![32, 32],
                },
            )
            .expect("insert");
        heaven.export_object(oid, ExportMode::Tct).expect("export");
        oids.push(oid);
    }
    heaven.clear_caches();

    // 2. Go concurrent: the façade is Send + Sync, sessions only need &self.
    let mut heaven = heaven.into_concurrent();
    heaven.set_batch_window(Duration::from_millis(10));
    let heaven = heaven;

    // 3. Deal a mixed query stream across the worker sessions.
    let queries: Vec<(u64, Minterval)> = selectivity_queries(&domain, 0.05, 64, 42)
        .into_iter()
        .enumerate()
        .map(|(i, q)| (oids[i % oids.len()], q))
        .collect();
    let streams = session_streams(&queries, workers);
    let sessions: Vec<Session> = streams.iter().map(|_| heaven.session()).collect();
    let t0 = heaven.clock().now_s();
    std::thread::scope(|s| {
        for (w, (session, stream)) in sessions.into_iter().zip(&streams).enumerate() {
            s.spawn(move || {
                for (oid, region) in stream {
                    session.fetch_region(*oid, region).expect("fetch");
                }
                println!(
                    "session {w:>2}: {:>3} queries, lane ended at {:>8.2} sim-s",
                    stream.len(),
                    session.now_s()
                );
            });
        }
    });

    // 4. The shared clock rejoined every lane: makespan = slowest session.
    let metrics = heaven.metrics();
    println!("\n{} sessions over {} queries", workers, queries.len());
    println!("simulated makespan:   {:.2} s", heaven.clock().now_s() - t0);
    println!(
        "tape fetches:         {} ({} coalesced away, {} batches)",
        metrics.counter("heaven.st_tape_fetches").get(),
        metrics.counter("sched.coalesced_fetches").get(),
        metrics.counter("sched.batches").get(),
    );
    println!("tape activity:        {}", heaven.tape_stats());
    println!(
        "st-cache:             {} | tile cache: {}",
        heaven.st_cache_stats(),
        heaven.tile_cache_stats()
    );
}
