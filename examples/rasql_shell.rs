//! An interactive RasQL shell over a pre-loaded HEAVEN archive.
//!
//! Loads three demo collections (climate fields, satellite scenes, CFD
//! output), archives them to simulated tape, and reads queries from stdin.
//!
//! ```sh
//! cargo run --release --example rasql_shell
//! # with a head-sampled JSONL trace for heaven-prof:
//! cargo run --release --example rasql_shell -- --trace /tmp/shell.jsonl --trace-sample 10
//! heaven> select avg_cells(era[0:11, 0:29, 0:59]) from era
//! heaven> select sat[0:99,0:99 | 400:511,400:511] from sat
//! heaven> select scale(sat[0:255,0:255], 8) from sat
//! heaven> select avg_cells(era[*:*,*:*,*:*]) from era as e where oid(e) = 1
//! heaven> \timing
//! heaven> \stats
//! heaven> \quit
//! ```
//!
//! `\timing` toggles the per-query breakdown: after each query the shell
//! prints where the simulated time went (disk cache, DBMS I/O, tape
//! exchange/locate/transfer/rewind, shelf). `\metrics` dumps the metrics
//! registry (counters, gauges, histogram quantiles); `\prom <file>`
//! writes it in Prometheus text exposition format.

use heaven::array::{CellType, Minterval, Tiling};
use heaven::arraydb::{run, Value};
use heaven::core::{ExportMode, HeavenConfig};
use heaven::obs::TraceConfig;
use heaven::tape::DeviceProfile;
use heaven::workload::{cfd_field, climate_field, satellite_image};
use std::io::{BufRead, Write};

/// `--trace <path>`: write a JSONL trace for offline profiling.
/// `--trace-sample <n>`: keep every n-th query trace (head sampling);
/// `--trace-slow <secs>`: keep sampled-out queries at least this slow.
fn trace_config() -> TraceConfig {
    let mut cfg = TraceConfig::off();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => {
                if let Some(path) = args.next() {
                    cfg.sink = TraceConfig::jsonl(path).sink;
                }
            }
            "--trace-sample" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.sample_1_in_n = n;
                }
            }
            "--trace-slow" => {
                if let Some(s) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.keep_slow_s = s;
                }
            }
            _ => {}
        }
    }
    cfg
}

fn main() {
    println!("HEAVEN RasQL shell — loading demo archive...");
    let mut heaven = heaven::open(
        DeviceProfile::ibm3590(),
        2,
        HeavenConfig {
            supertile_bytes: Some(1 << 20),
            trace: trace_config(),
            ..HeavenConfig::default()
        },
    );

    // era: 12 months x 30 lat x 60 lon climate field
    heaven
        .arraydb_mut()
        .create_collection("era", CellType::F32, 3)
        .unwrap();
    let era = climate_field(Minterval::new(&[(0, 11), (0, 29), (0, 59)]).unwrap(), 1);
    let era_oid = heaven
        .arraydb_mut()
        .insert_object(
            "era",
            &era,
            Tiling::Regular {
                tile_shape: vec![4, 15, 15],
            },
        )
        .unwrap();

    // sat: one 512x512 vegetation-index scene
    heaven
        .arraydb_mut()
        .create_collection("sat", CellType::U8, 2)
        .unwrap();
    let sat = satellite_image(Minterval::new(&[(0, 511), (0, 511)]).unwrap(), 2);
    let sat_oid = heaven
        .arraydb_mut()
        .insert_object(
            "sat",
            &sat,
            Tiling::Regular {
                tile_shape: vec![128, 128],
            },
        )
        .unwrap();

    // cfd: a 64^3 turbulence field (kept on disk — mixed hierarchy)
    heaven
        .arraydb_mut()
        .create_collection("cfd", CellType::F64, 3)
        .unwrap();
    let cfd = cfd_field(Minterval::new(&[(0, 63), (0, 63), (0, 63)]).unwrap(), 3);
    heaven
        .arraydb_mut()
        .insert_object(
            "cfd",
            &cfd,
            Tiling::Regular {
                tile_shape: vec![32, 32, 32],
            },
        )
        .unwrap();

    // archive era + sat to tape; cfd stays on disk
    for oid in [era_oid, sat_oid] {
        heaven.export_object(oid, ExportMode::Tct).unwrap();
    }
    heaven.clear_caches();
    println!(
        "collections: era (3-D, archived), sat (2-D, archived), cfd (3-D, on disk)\n\
         commands: \\timing, \\stats, \\metrics, \\prom <file>, \\collections, \\quit\n"
    );

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    let mut timing = false;
    loop {
        print!("heaven> ");
        out.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            "\\quit" | "\\q" | "exit" => break,
            "\\timing" => {
                timing = !timing;
                println!("per-query breakdown {}", if timing { "on" } else { "off" });
                continue;
            }
            "\\stats" => {
                println!(
                    "tape: {}\nheaven: {}\nst-cache hit ratio: {:.2}  tile-cache hit ratio: {:.2}\nsimulated time: {:.1} s",
                    heaven.tape_stats(),
                    heaven.stats(),
                    heaven.st_cache_stats().hit_ratio(),
                    heaven.tile_cache_stats().hit_ratio(),
                    heaven.clock().now_s()
                );
                continue;
            }
            "\\metrics" => {
                print!("{}", heaven.metrics().render_text());
                continue;
            }
            _ if line.starts_with("\\prom") => {
                match line.split_whitespace().nth(1) {
                    Some(path) => {
                        match std::fs::write(path, heaven.metrics().render_prometheus()) {
                            Ok(()) => println!("wrote {path}"),
                            Err(e) => println!("cannot write {path}: {e}"),
                        }
                    }
                    None => println!("usage: \\prom <file>"),
                }
                continue;
            }
            "\\collections" => {
                for name in heaven.arraydb().collection_names() {
                    let c = heaven.arraydb().collection(&name).unwrap();
                    println!(
                        "  {name}: {} {}-D objects of {}",
                        c.objects.len(),
                        c.dim,
                        c.cell_type
                    );
                }
                continue;
            }
            _ => {}
        }
        let t0 = heaven.clock().now_s();
        match run(&mut heaven, line) {
            Ok(results) => {
                let dt = heaven.clock().now_s() - t0;
                for r in &results {
                    match &r.value {
                        Value::Scalar(s) => println!("oid {}: {s}", r.oid),
                        Value::Array(a) => println!(
                            "oid {}: array {} ({} cells, {})",
                            r.oid,
                            a.domain(),
                            a.domain().cell_count(),
                            a.cell_type()
                        ),
                    }
                }
                println!("({} result(s), {dt:.1} simulated s)", results.len());
                if timing {
                    if let Some(b) = heaven.last_query_breakdown() {
                        println!("{b}");
                    }
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye.");
}
