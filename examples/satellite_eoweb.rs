//! Satellite archive: the DLR EOWEB scenario (paper §1.2, Fig. 1.2 left).
//!
//! Vegetation-index mosaics are archived; customers order *regions of
//! interest* that are rarely rectangular — coastlines, river corridors —
//! expressed here as Object-Framing queries. Precomputed per-tile
//! statistics answer catalog-browsing aggregates without touching tape.
//!
//! ```sh
//! cargo run --release --example satellite_eoweb
//! ```

use heaven::array::{CellType, Condenser, Minterval, Tiling};
use heaven::arraydb::run;
use heaven::core::{ExportMode, HeavenConfig};
use heaven::tape::DeviceProfile;
use heaven::workload::satellite_image;

fn main() {
    let mut heaven = heaven::open(
        DeviceProfile::dlt7000(),
        1,
        HeavenConfig {
            supertile_bytes: Some(1 << 20),
            // per-tile stats recorded at export: the EOWEB catalog shows
            // scene averages without staging anything
            precompute: vec![Condenser::Avg, Condenser::Max],
            ..HeavenConfig::default()
        },
    );
    heaven
        .arraydb_mut()
        .create_collection("ndvi", CellType::U8, 2)
        .expect("collection");

    // Two 512x512 scenes.
    let domain = Minterval::new(&[(0, 511), (0, 511)]).unwrap();
    for scene in 0..2u64 {
        let img = satellite_image(domain.clone(), scene);
        heaven
            .arraydb_mut()
            .insert_object(
                "ndvi",
                &img,
                Tiling::Regular {
                    tile_shape: vec![128, 128],
                },
            )
            .expect("insert");
    }
    let oids = heaven.arraydb().object_ids();
    for &oid in &oids {
        let rep = heaven.export_object(oid, ExportMode::Tct).expect("export");
        println!(
            "archived scene {oid}: {} super-tiles on media {:?}",
            rep.supertiles, rep.media
        );
    }
    heaven.clear_caches();

    // Catalog browsing: scene-wide statistics from the precomputed
    // catalog — zero tape activity.
    let tape_before = heaven.tape_stats().bytes_read;
    let rs = run(
        &mut heaven,
        "select avg_cells(s[0:511, 0:511]) from ndvi as s",
    )
    .expect("catalog stats");
    for (i, r) in rs.iter().enumerate() {
        println!(
            "scene {i}: mean NDVI {:.1} (0-255 scale)",
            r.value.as_scalar().unwrap()
        );
    }
    assert_eq!(
        heaven.tape_stats().bytes_read,
        tape_before,
        "catalog stats must not touch tape"
    );
    println!("catalog stats served without tape access ✓");

    // A customer orders an L-shaped coastal strip: only the super-tiles
    // under the frame are staged, not the bounding box.
    let rs = run(
        &mut heaven,
        "select s[0:511,0:63 | 448:511,0:511] from ndvi as s",
    )
    .expect("frame order");
    let strip = rs[0].value.as_array().expect("array result");
    println!(
        "delivered coastal strip, bounding box {} ({} bytes moved from tape)",
        strip.domain(),
        heaven.stats().st_tape_bytes
    );

    // Change detection between the two scenes over the strip.
    let rs = run(
        &mut heaven,
        "select count_cells(s[0:511, 0:63] > 128) from ndvi as s",
    )
    .expect("threshold count");
    for (i, r) in rs.iter().enumerate() {
        println!(
            "scene {i}: {} high-vegetation cells in the west strip",
            r.value.as_scalar().unwrap()
        );
    }

    println!(
        "\ntape: {}\nsimulated time {:.1} s",
        heaven.tape_stats(),
        heaven.clock().now_s()
    );
}
