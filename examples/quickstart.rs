//! Quickstart: insert a multidimensional array, archive it to tape, and
//! query it transparently across the storage hierarchy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! # with a JSONL trace for heaven-prof:
//! cargo run --release --example quickstart -- --trace /tmp/quickstart.jsonl
//! ```

use heaven::array::{CellType, MDArray, Minterval, Tiling};
use heaven::arraydb::run;
use heaven::core::{ExportMode, HeavenConfig};
use heaven::obs::TraceConfig;
use heaven::tape::DeviceProfile;

/// `--trace <path>`: write a JSONL trace for offline profiling.
/// `--trace-sample <n>`: keep every n-th query trace (head sampling);
/// `--trace-slow <secs>`: keep sampled-out queries at least this slow.
fn trace_config() -> TraceConfig {
    let mut cfg = TraceConfig::off();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => {
                if let Some(path) = args.next() {
                    cfg.sink = TraceConfig::jsonl(path).sink;
                }
            }
            "--trace-sample" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.sample_1_in_n = n;
                }
            }
            "--trace-slow" => {
                if let Some(s) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.keep_slow_s = s;
                }
            }
            _ => {}
        }
    }
    cfg
}

fn main() {
    // 1. Open a HEAVEN system: array DBMS + one DLT7000 tape library.
    let mut heaven = heaven::open(
        DeviceProfile::dlt7000(),
        1,
        HeavenConfig {
            supertile_bytes: Some(128 << 10), // 128 KB super-tiles for the demo
            trace: trace_config(),
            ..HeavenConfig::default()
        },
    );

    // 2. Create a collection and insert a 2-D temperature field.
    heaven
        .arraydb_mut()
        .create_collection("temps", CellType::F64, 2)
        .expect("create collection");
    let domain = Minterval::new(&[(0, 199), (0, 199)]).unwrap();
    let field = MDArray::generate(domain, CellType::F64, |p| {
        290.0 + (p.coord(0) as f64 / 20.0).sin() * 5.0 + p.coord(1) as f64 * 0.01
    });
    let oid = heaven
        .arraydb_mut()
        .insert_object(
            "temps",
            &field,
            Tiling::Regular {
                tile_shape: vec![50, 50],
            },
        )
        .expect("insert");
    println!(
        "inserted object {oid}: domain {}, {} tiles",
        field.domain(),
        heaven.arraydb().object(oid).unwrap().tiles.len()
    );

    // 3. Query while the data is on disk.
    let rs = run(
        &mut heaven,
        "select avg_cells(t[0:49, 0:49]) from temps as t",
    )
    .expect("query");
    println!(
        "avg over [0:49,0:49] (disk):   {:.3} K",
        rs[0].value.as_scalar().unwrap()
    );

    // 4. Archive the object to tape with the decoupled TCT export.
    let report = heaven.export_object(oid, ExportMode::Tct).expect("export");
    println!(
        "exported: {} super-tiles, {} bytes, {:.1} s simulated (pipelined {:.1} s)",
        report.supertiles, report.bytes, report.elapsed_s, report.pipelined_s
    );
    heaven.clear_caches();

    // 5. The *same* query now runs transparently against tape.
    let rs = run(
        &mut heaven,
        "select avg_cells(t[0:49, 0:49]) from temps as t",
    )
    .expect("query");
    println!(
        "avg over [0:49,0:49] (tape):   {:.3} K",
        rs[0].value.as_scalar().unwrap()
    );

    // 6. An Object-Framing query: two regions of interest in one request.
    let rs = run(
        &mut heaven,
        "select count_cells(t[0:19,0:19 | 180:199,180:199] > 289) from temps as t",
    )
    .expect("framing query");
    println!(
        "warm cells in two corners:     {}",
        rs[0].value.as_scalar().unwrap()
    );

    println!(
        "\ntape activity: {}\nsimulated time: {:.1} s",
        heaven.tape_stats(),
        heaven.clock().now_s()
    );
    heaven.trace().flush();
}
