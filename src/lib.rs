#![warn(missing_docs)]
//! # HEAVEN — Hierarchical Storage and Archive Environment for
//! Multidimensional Array Database Management Systems
//!
//! A from-scratch Rust reproduction of Bernd Reiner's HEAVEN system
//! (TU München dissertation / EDBT 2004): a multidimensional array DBMS
//! transparently fused with simulated tertiary storage (robotic tape
//! libraries), optimized with super-tiles, clustering, query scheduling, a
//! caching hierarchy, object framing and precomputed operation results.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`mod@array`] — domains, arrays, tiling, orders, frames;
//! * [`tape`] — the tertiary-storage simulator and device profiles;
//! * [`hsm`] — hierarchical storage management (file staging + direct);
//! * [`rdbms`] — the base relational storage manager (pages, B-trees,
//!   BLOBs, WAL);
//! * [`arraydb`] — the array DBMS with the RasQL-subset query language;
//! * [`core`] — HEAVEN itself (super-tiles, STAR/eSTAR, export, caching,
//!   scheduling, maintenance, precomputation);
//! * [`obs`] — simulated-time tracing, the unified metrics registry and
//!   per-query breakdowns;
//! * [`workload`] — synthetic data and query generators.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use heaven_array as array;
pub use heaven_arraydb as arraydb;
pub use heaven_core as core;
pub use heaven_hsm as hsm;
pub use heaven_obs as obs;
pub use heaven_rdbms as rdbms;
pub use heaven_tape as tape;
pub use heaven_workload as workload;

/// Convenience constructor: a ready-to-use HEAVEN system on the given
/// device profile, with an in-memory base RDBMS and `drives` tape drives
/// sharing one simulated clock.
pub fn open(
    profile: tape::DeviceProfile,
    drives: usize,
    config: core::HeavenConfig,
) -> core::Heaven {
    let clock = tape::SimClock::new();
    let db = rdbms::Database::new(tape::DiskProfile::scsi2003(), clock.clone(), 8192);
    let adb = arraydb::ArrayDb::create(db).expect("fresh database");
    let library = tape::TapeLibrary::new(profile, drives, clock);
    core::Heaven::new(adb, library, config)
}
