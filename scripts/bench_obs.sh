#!/usr/bin/env bash
# Measure the observability overhead (trace sink off vs in-memory ring vs
# JSONL file) on a warm query loop and record machine-readable results.
set -euo pipefail
cd "$(dirname "$0")/.."

# cargo runs bench binaries from the package dir: make the path absolute
out="${1:-BENCH_obs_overhead.json}"
case "$out" in /*) ;; *) out="$(pwd)/$out" ;; esac
cargo bench -p heaven-bench --bench obs_overhead -- --json "$out"
