#!/usr/bin/env bash
# Run the materialization benchmark (owned vs zero-copy, cold vs warm,
# 1/4/16-tile super-tiles) and record machine-readable results.
set -euo pipefail
cd "$(dirname "$0")/.."

# cargo runs bench binaries from the package dir: make the path absolute
out="$(pwd)/${1:-BENCH_materialize.json}"
cargo bench -p heaven-bench --bench materialize -- --json "$out"
