#!/usr/bin/env bash
# Run the wire-codec benchmark (raw / rle / shuffle_rle per data class,
# fast RLE vs the scalar reference and the seed codec, adaptive probe
# overhead) and record machine-readable results.
set -euo pipefail
cd "$(dirname "$0")/.."

# cargo runs bench binaries from the package dir: make the path absolute
out="$(pwd)/${1:-BENCH_codec.json}"
cargo bench -p heaven-bench --bench codec -- --json "$out"
