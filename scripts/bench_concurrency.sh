#!/usr/bin/env bash
# Measure multi-session concurrency: warm-query scaling across 1/4/16
# sessions (simulated time, deterministic on any host) and media
# exchanges of cross-session tape batching vs per-session FIFO staging.
set -euo pipefail
cd "$(dirname "$0")/.."

# cargo runs bench binaries from the package dir: make the path absolute
out="$(pwd)/${1:-BENCH_concurrency.json}"
cargo bench -p heaven-bench --bench concurrency -- --json "$out"
