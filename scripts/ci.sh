#!/usr/bin/env bash
# The local CI gate: formatting, lints, the tier-1 release build, and the
# full workspace test suite. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings -D clippy::redundant_clone

echo "==> cargo build --release"
cargo build --release

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> heaven-prof smoke test"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release --example quickstart -- --trace "$tmpdir/quickstart.jsonl" > /dev/null
cargo run --release -p heaven-prof -- "$tmpdir/quickstart.jsonl" --out-dir "$tmpdir/prof" > /dev/null
for f in flame.folded timeline.json tail.txt; do
  [ -s "$tmpdir/prof/$f" ] || { echo "heaven-prof artifact $f missing or empty"; exit 1; }
done
# flame.folded: every line is "stack<space>integer-weight"
awk '!/ [0-9]+$/ { exit 1 }' "$tmpdir/prof/flame.folded" \
  || { echo "flame.folded has malformed lines"; exit 1; }
# timeline.json: a JSON object with a windows array
grep -q '"windows":\[' "$tmpdir/prof/timeline.json" \
  || { echo "timeline.json missing windows array"; exit 1; }
# tail.txt: header plus at least one span row
[ "$(wc -l < "$tmpdir/prof/tail.txt")" -ge 2 ] \
  || { echo "tail.txt has no span rows"; exit 1; }

echo "CI gate passed."
