#!/usr/bin/env bash
# The local CI gate: formatting, lints, the tier-1 release build, and the
# full workspace test suite. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings -D clippy::redundant_clone

echo "==> no allocating Field::Str at instrumentation sites"
# Instrumentation call sites must use Field::StaticStr / Field::dyn_str /
# numeric fields: Field::Str(..) heap-allocates on the trace fast path.
if grep -rn 'Field::Str(' \
    crates/tape/src crates/hsm/src crates/core/src \
    crates/rdbms/src crates/arraydb/src; then
  echo "Field::Str at an instrumentation site: use Field::StaticStr or Field::dyn_str"
  exit 1
fi

echo "==> no unobservable locks in core/hsm"
# Concurrency-critical crates must lock through the vendored parking_lot
# (contention-counting, timed acquisition feeding cache.shard_lock_wait_s)
# and stay Sync: raw std::sync::Mutex hides contention, RefCell breaks
# Sync at a distance.
if grep -rn 'std::sync::Mutex\|RefCell' crates/core/src crates/hsm/src; then
  echo "raw std::sync::Mutex/RefCell in core/hsm: use parking_lot"
  exit 1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> concurrency stress + invariants (release)"
# The sharded-cache stress and batching invariants are timing-sensitive;
# run them optimized, as the bench does.
cargo test -q --release -p heaven-core --test concurrency

echo "==> concurrency bench smoke"
tmpjson="$(mktemp)"
cargo bench -p heaven-bench --bench concurrency -- --json "$tmpjson" > /dev/null
for key in '"bench": "concurrency"' '"speedup_16_over_1"' '"fifo_mounts"' '"batched_mounts"'; do
  grep -q "$key" "$tmpjson" || { echo "BENCH_concurrency.json missing $key"; exit 1; }
done
python3 - "$tmpjson" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["warm"]["speedup_16_over_1"] >= 3.0, d["warm"]
assert d["cold"]["batched_mounts"] < d["cold"]["fifo_mounts"], d["cold"]
EOF
rm -f "$tmpjson"

echo "==> seeded chaos smoke"
# The fault-schedule property tests (any schedule: exact bytes or typed
# MediaLost, never silent corruption) run optimized, then one faults
# bench pass checks the injected/recovered ledger end to end.
cargo test -q --release -p heaven-core --test chaos_proptests
chaosjson="$(mktemp)"
cargo bench -p heaven-bench --bench faults -- --json "$chaosjson" > /dev/null
python3 - "$chaosjson" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
clean, faulty = d["clean"], d["faulty"]
assert clean["silent_corruption"] == 0 and faulty["silent_corruption"] == 0, d
assert clean["media_lost_queries"] == 0, clean
assert faulty["drive_failures"] > 0 and faulty["retries"] > 0, faulty
assert faulty["checksum_failures"] == faulty["corrupted_reads"], faulty
assert d["recovery_overhead_p99"] >= 1.0, d
EOF
rm -f "$chaosjson"

echo "==> no per-point CellValue::read in condenser hot loops"
# Aggregation kernels must run the monomorphized per-cell-type loops;
# a CellValue::read in ops.rs reintroduces a match per point.
if grep -n 'CellValue::read' crates/array/src/ops.rs; then
  echo "CellValue::read in crates/array/src/ops.rs: use the typed kernels"
  exit 1
fi

echo "==> codec bench smoke"
# One pass over all payload classes: schema keys present, the fast RLE
# decode holds its margin over the scalar reference on run-heavy data,
# and the adaptive probe stays within 1% of a raw pass-through on
# incompressible data (which must select the raw codec).
codecjson="$(mktemp)"
cargo bench -p heaven-bench --bench codec -- --json "$codecjson" > /dev/null
for key in '"bench": "codec"' '"adaptive_raw_overhead_vs_memcpy_pct"' '"classes"' '"rle_decode_speedup"'; do
  grep -q "$key" "$codecjson" || { echo "BENCH_codec.json missing $key"; exit 1; }
done
python3 - "$codecjson" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
classes = {c["class"]: c for c in d["classes"]}
assert {"constant", "classified", "ramp_i32", "random"} <= classes.keys(), classes.keys()
assert classes["constant"]["rle_decode_speedup"] >= 4.0, classes["constant"]
assert classes["constant"]["seed_rle_decode_speedup"] >= 1.0, classes["constant"]
assert d["adaptive_raw_overhead_vs_memcpy_pct"] <= 1.0, d["adaptive_raw_overhead_vs_memcpy_pct"]
adaptive = [r for r in classes["random"]["codecs"] if r["mode"] == "adaptive"]
assert adaptive and adaptive[0]["codec"] == "raw", adaptive
EOF
rm -f "$codecjson"

echo "==> BENCH_*.json schema validation (one pass)"
# Every checked-in bench artifact must exist and carry its expected
# top-level keys; a BENCH file without a schema entry here is an error
# (add the entry when adding the bench).
python3 - <<'EOF'
import glob, json, os
SCHEMAS = {
    "BENCH_codec.json": {
        "bench", "baseline", "classes", "memcpy_gib_s",
        "payload_bytes", "adaptive_raw_overhead_vs_memcpy_pct",
    },
    "BENCH_concurrency.json": {"bench", "model", "warm", "cold"},
    "BENCH_faults.json": {
        "bench", "model", "clean", "faulty",
        "recovery_overhead_p99", "recovery_overhead_p999",
    },
    "BENCH_materialize.json": {"bench", "baseline", "configs"},
    "BENCH_obs_overhead.json": {"bench", "queries", "workload", "sinks"},
}
found = {os.path.basename(p) for p in glob.glob("BENCH_*.json")}
missing = set(SCHEMAS) - found
assert not missing, f"checked-in bench files missing: {sorted(missing)}"
unknown = found - set(SCHEMAS)
assert not unknown, f"BENCH files without a schema entry: {sorted(unknown)}"
for name, keys in SCHEMAS.items():
    d = json.load(open(name))
    absent = keys - d.keys()
    assert not absent, f"{name} missing keys {sorted(absent)}"
sinks = {s["sink"] for s in json.load(open("BENCH_obs_overhead.json"))["sinks"]}
assert {"off", "ring", "jsonl"} <= sinks, sinks
print(f"validated {len(SCHEMAS)} bench artifacts")
EOF

echo "==> observability overhead re-run (links + exemplars on)"
# Fresh measurement, not the checked-in numbers: the ring sink must stay
# within 5% of tracing-off with link records and histogram exemplars
# compiled into the fast path. The bench minimizes over order-rotated
# rounds against prebuilt systems, but on a single-vCPU shared runner the
# off baseline itself drifts several percent between invocations, so one
# reading can straddle the bound; a true regression (an allocation or a
# syscall on the record path is 5-20x, not 1%) fails every attempt.
obsjson="$(mktemp)"
obs_ok=0
for attempt in 1 2 3 4; do
  scripts/bench_obs.sh "$obsjson" > /dev/null
  if python3 - "$obsjson" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
ring = next(s for s in d["sinks"] if s["sink"] == "ring")
sys.exit(0 if ring["overhead_vs_off"] <= 0.05 else 1)
EOF
  then obs_ok=1; break; fi
  echo "  ring overhead > 5% on attempt $attempt, retrying"
done
[ "$obs_ok" = 1 ] || { echo "ring-sink overhead exceeded 5% in 4 runs"; exit 1; }
rm -f "$obsjson"

echo "==> causal cross-session trace acceptance (release)"
# 8 chaos-stressed sessions: links attribute every query to its shared
# batch fetch, queue/service histograms fill, the stall watchdog fires,
# and exemplars surface in the Prometheus exposition. Timing-sensitive
# (batch windows), so run optimized like the other concurrency gates.
cargo test -q --release -p heaven-prof --test causal_chaos

echo "==> ring-path allocation guarantee"
# Named explicitly so a regression in the zero-allocation fast path fails
# CI even if someone filters these files out of the workspace run.
cargo test -q -p heaven-obs --test alloc_free
cargo test -q --test trace_alloc

echo "==> heaven-prof smoke test"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release --example quickstart -- --trace "$tmpdir/quickstart.jsonl" > /dev/null
cargo run --release -p heaven-prof -- "$tmpdir/quickstart.jsonl" --out-dir "$tmpdir/prof" > /dev/null
for f in flame.folded timeline.json tail.txt critical_path.json; do
  [ -s "$tmpdir/prof/$f" ] || { echo "heaven-prof artifact $f missing or empty"; exit 1; }
done
# flame.folded: every line is "stack<space>integer-weight"
awk '!/ [0-9]+$/ { exit 1 }' "$tmpdir/prof/flame.folded" \
  || { echo "flame.folded has malformed lines"; exit 1; }
# timeline.json: a JSON object with windows, session lanes, link edges
for key in '"windows":\[' '"lanes":\[' '"edges":\['; do
  grep -q "$key" "$tmpdir/prof/timeline.json" \
    || { echo "timeline.json missing $key"; exit 1; }
done
# critical_path.json: per-query rows with causal totals
grep -q '"totals":{' "$tmpdir/prof/critical_path.json" \
  || { echo "critical_path.json missing totals"; exit 1; }
# tail.txt: header plus at least one span row
[ "$(wc -l < "$tmpdir/prof/tail.txt")" -ge 2 ] \
  || { echo "tail.txt has no span rows"; exit 1; }

echo "==> heaven-prof smoke test (head-sampled trace)"
cargo run --release --example quickstart -- \
  --trace "$tmpdir/sampled.jsonl" --trace-sample 2 > /dev/null
cargo run --release -p heaven-prof -- "$tmpdir/sampled.jsonl" \
  --out-dir "$tmpdir/prof-sampled" > "$tmpdir/prof-sampled.out"
grep -q 'head-sampled 1-in-2' "$tmpdir/prof-sampled.out" \
  || { echo "heaven-prof did not report the sampling rate"; exit 1; }
[ -s "$tmpdir/prof-sampled/flame.folded" ] \
  || { echo "sampled-trace flame.folded missing or empty"; exit 1; }

echo "CI gate passed."
