#!/usr/bin/env bash
# The local CI gate: formatting, lints, the tier-1 release build, and the
# full workspace test suite. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings -D clippy::redundant_clone

echo "==> cargo build --release"
cargo build --release

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "CI gate passed."
