#!/usr/bin/env bash
# Measure fault-load tails: the adversarial mixed ingest+query stream run
# clean vs under seeded chaos (drive failures, media errors, bit rot),
# dual-copy + recovery on. Reports p50/p99/p99.9 simulated latency, the
# recovery overhead, and verifies every answer byte-exactly.
set -euo pipefail
cd "$(dirname "$0")/.."

# cargo runs bench binaries from the package dir: make the path absolute
out="$(pwd)/${1:-BENCH_faults.json}"
cargo bench -p heaven-bench --bench faults -- --json "$out"
